"""The round-based cluster simulator (the paper's testbed, §6.1).

Each scheduling round (5 minutes by default):

1. tenants active at the round start are profiled (§4.1), optionally with
   injected error (Fig. 10b) or deliberate misreports (Fig. 4b);
2. the fair-share scheduler computes fluid shares and its throughput
   estimate;
3. the deviation rounder converts fluid shares to whole GPUs (§4.3);
4. the placer binds jobs to devices, applying straggler (§4.4) and
   network-contention effects;
5. jobs advance; completions are timestamped inside the round, starved
   jobs accumulate priority for the next round.

The simulator substitutes the paper's 24-GPU testbed: every reported
metric (normalised throughput, JCT, straggler counts, solver overhead) is
a function of scheduling decisions, which are bit-for-bit the real
algorithms from :mod:`repro.core` and :mod:`repro.baselines`.

Dynamic workloads
-----------------
Beyond the static config knobs (``device_failures`` / ``device_repairs``),
the simulator accepts a *timed event stream*: any object with a ``time``
attribute (seconds) and an ``apply(simulator, now)`` method can be passed
via the ``events`` constructor argument or :meth:`ClusterSimulator.schedule_event`.
Due events are drained at the start of each round, before capacities are
re-read and the active tenant set is computed, so an event may add or
remove tenants, inject jobs, or fail/repair devices mid-simulation.  The
concrete event vocabulary (tenant churn, job bursts, trace replay) lives
in :mod:`repro.scenarios`; the simulator only knows the protocol, which
keeps the dependency pointing from scenarios to cluster, never back.

Incremental (warm-started) rounds
---------------------------------
Sequential replay is the hot path, and most consecutive rounds pose the
scheduler the *same* question: same tenants, same measured profiles, same
capacities.  With ``config.warm_start`` (the default) the simulator
memoizes :class:`~repro.cluster.schedulers.SchedulerDecision` objects by
the scheduler's own content key
(:meth:`~repro.cluster.schedulers.FairShareScheduler.decision_key`) —
a repeat round reuses the previous solution instead of re-running the LP.
Since the middleware-pipeline redesign the memo *is* a gateway pipeline:
a two-stage :class:`repro.gateway.Gateway` whose cache stage is a
decision-caching subclass of
:class:`~repro.gateway.middleware.CacheMiddleware` (content key supplied
per request via ``Request.key``, deep-copying decisions on both insert
and lookup) and whose terminal stage runs the round scheduler — the same
machinery, ordering contract, and LRU bound that serve allocation
solves.
Because the key covers every input the decision depends on and the
schedulers are deterministic, a warm replay is **bit-identical** to a
cold one; anything that changes the instance — tenant churn, device
failure/repair, profile drift, misreports — changes the key and solves
cold.  Shape-changing mutations additionally flush the memo outright
(:meth:`ClusterSimulator.invalidate_warm_cache`).  ``warm_stats``
reports the hit/solve split; pass ``warm_start=False`` (CLI:
``repro simulate --cold``) to disable reuse entirely.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.job import Job
from repro.cluster.metrics import CompletionRecord, MetricsCollector, RoundMetrics
from repro.cluster.placement import Placer, PlacementPolicy
from repro.cluster.profiler import ProfilingAgent
from repro.cluster.rounding import DeviationRounder, NaiveRounder
from repro.cluster.schedulers import (
    FairShareScheduler,
    SchedulerDecision,
    make_fair_share_scheduler,
)
from repro.cluster.tenant import Tenant
from repro.cluster.topology import ClusterTopology
from repro.exceptions import SimulationError, ValidationError
from repro.gateway import Gateway, Request, Response
from repro.gateway.middleware import CacheMiddleware, Middleware
from repro.parallel import (
    BackendSpec,
    ProcessBackend,
    ThreadBackend,
    get_backend,
    probe_picklable,
)


def _run_sweep_entry(payload: tuple) -> Any:
    """Worker entry for :meth:`ClusterSimulator.run_sweep`.

    Builds a fresh runnable from ``factory(seed)`` inside the worker, so
    no mutable simulation state is ever shared between seeds.  The
    factory may return anything with a ``run()`` method — a
    :class:`ClusterSimulator` (yielding a
    :class:`~repro.cluster.metrics.MetricsCollector`) or a
    :class:`~repro.scenarios.runner.ScenarioRunner` (yielding a
    :class:`~repro.scenarios.runner.ScenarioResult`).
    """
    factory, seed = payload
    return factory(seed).run()


@dataclass
class SimulationConfig:
    """Tunable parameters of one simulation run."""

    round_duration: float = 300.0  # seconds; the paper's 5-minute rounds
    num_rounds: int = 24
    profiling_error: float = 0.0
    profiling_seed: int = 0
    stop_when_idle: bool = True
    # deviation rounding models time-sliced realisation of fractional
    # shares (all real systems do some form of it); the min-demand rule
    # (§4.3) is OEF's refinement and is what baselines lack
    use_deviation_rounding: bool = True
    use_min_demand_rule: bool = True
    # tenant name -> multiplicative factors applied to its reported
    # speedups (Fig. 4b cheats by inflating entries above 1.0)
    misreports: Dict[str, np.ndarray] = field(default_factory=dict)
    # failure injection: round index -> device ids that fail at the start
    # of that round (capacity shrinks; the evaluator reallocates around it)
    device_failures: Dict[int, List[int]] = field(default_factory=dict)
    # round index -> device ids repaired at the start of that round
    device_repairs: Dict[int, List[int]] = field(default_factory=dict)
    # reuse the previous solution when a round poses the scheduler an
    # identical question (see "Incremental rounds" in the module docs);
    # False forces a cold LP solve every round
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.round_duration <= 0:
            raise ValidationError("round_duration must be positive")
        if self.num_rounds < 1:
            raise ValidationError("num_rounds must be >= 1")


@dataclass
class WarmStats:
    """How the warm-start engine split a run's scheduling rounds."""

    #: Rounds served from a memoized decision (no LP ran).
    warm_hits: int = 0
    #: Rounds that ran the scheduler (cold solves).
    cold_solves: int = 0
    #: Times the decision memo was flushed by a shape-changing mutation.
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.warm_hits + self.cold_solves
        return self.warm_hits / total if total else 0.0


def _copy_decision(
    decision: SchedulerDecision, solver_seconds: Optional[float] = None
) -> SchedulerDecision:
    """Deep-copy a decision so memoized arrays can never be mutated."""
    return SchedulerDecision(
        tenant_shares={
            name: share.copy() for name, share in decision.tenant_shares.items()
        },
        estimated=dict(decision.estimated),
        solver_seconds=(
            decision.solver_seconds if solver_seconds is None else solver_seconds
        ),
        job_type_shares={
            tenant: {jt: share.copy() for jt, share in by_type.items()}
            for tenant, by_type in decision.job_type_shares.items()
        },
    )


class _DecisionCacheMiddleware(CacheMiddleware):
    """Gateway cache stage specialised for round decisions.

    Keys are supplied per request (the scheduler's own ``decision_key``
    bytes via ``Request.key``), and decisions are deep-copied on both
    insert and lookup so nothing downstream can mutate a memoized entry
    — the same anti-poisoning rule the allocation cache applies to its
    matrices.  Served hits report ``solver_seconds=0.0``: no LP ran.
    """

    name = "decision-cache"

    def _entry(self, request: Request, response: Response) -> object:
        return _copy_decision(response.result)

    def _revive(self, entry: object, request: Request) -> Response:
        return Response(
            scheduler=request.scheduler,
            result=_copy_decision(entry, solver_seconds=0.0),
            disposition="cache-hit",
        )


class _DecisionSolverMiddleware(Middleware):
    """Terminal stage: run the simulator's round scheduler cold."""

    name = "decision-solver"

    def __init__(self, simulator: "ClusterSimulator"):
        self._simulator = simulator

    def handle(self, request: Request, next) -> Response:
        active, profiles, capacities = request.instance
        decision = self._simulator.scheduler.shares(active, profiles, capacities)
        return Response(scheduler=request.scheduler, result=decision)


class ClusterSimulator:
    """Drives one scheduler over one topology and tenant population."""

    #: Bound on memoized round decisions (content-keyed LRU).
    DECISION_CACHE_MAX = 64

    def __init__(
        self,
        topology: ClusterTopology,
        tenants: Sequence[Tenant],
        scheduler: "FairShareScheduler | str",
        placer: Optional[Placer] = None,
        config: Optional[SimulationConfig] = None,
        events: Optional[Sequence[Any]] = None,
        metrics: Optional[MetricsCollector] = None,
    ):
        if isinstance(scheduler, str):
            scheduler = make_fair_share_scheduler(scheduler)
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise ValidationError("tenant names must be unique")
        self.topology = topology
        self.tenants: Dict[str, Tenant] = {tenant.name: tenant for tenant in tenants}
        self.scheduler = scheduler
        self.placer = placer or Placer(topology)
        self.config = config or SimulationConfig()
        # callers may supply a pre-wired collector (streaming observer,
        # keep_rounds=False) — see MetricsCollector's docstring
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self._rounder = (
            DeviationRounder() if self.config.use_deviation_rounding else NaiveRounder()
        )
        self._profiler = ProfilingAgent(
            error_rate=self.config.profiling_error, seed=self.config.profiling_seed
        )
        self._capacities = topology.capacities()
        self._recorded_completions: set = set()
        # warm-start engine: a two-stage gateway pipeline (content-keyed
        # decision cache over the terminal round-scheduler stage)
        self._decision_cache = _DecisionCacheMiddleware(
            max_entries=self.DECISION_CACHE_MAX
        )
        self._decision_gateway = Gateway(
            [self._decision_cache, _DecisionSolverMiddleware(self)]
        )
        self.warm_stats = WarmStats()
        # timed event stream: a min-heap of (time, sequence, event) so
        # simultaneous events fire in scheduling order
        self._event_heap: List[tuple] = []
        self._event_seq = 0
        self.events_applied = 0
        for event in events or ():
            self.schedule_event(event)

    # -- dynamic-workload hooks ------------------------------------------------
    def schedule_event(self, event: Any) -> None:
        """Queue a timed event (``.time`` seconds, ``.apply(simulator, now)``).

        Events fire at the start of the first round whose start time is
        ``>= event.time``; events scheduled mid-run for a time that has
        already passed fire at the next round boundary.  An event due
        after the *final* round's start can never fire — :meth:`run`
        finishes with a :class:`RuntimeWarning` naming how many such
        events were left unapplied (scenario builders clamp their
        event times to the horizon to avoid this).
        """
        time = float(event.time)
        if time < 0:
            raise ValidationError("event time must be >= 0")
        heapq.heappush(self._event_heap, (time, self._event_seq, event))
        self._event_seq += 1

    def pending_events(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._event_heap)

    def add_tenant(self, tenant: Tenant) -> None:
        """Admit a new tenant mid-simulation (scenario tenant churn)."""
        if tenant.name in self.tenants:
            raise ValidationError(
                f"tenant {tenant.name!r} already exists; tenant names must "
                "stay unique for the whole simulation"
            )
        self.tenants[tenant.name] = tenant
        self.invalidate_warm_cache()

    def remove_tenant(self, name: str, now: float) -> None:
        """Force a tenant's departure at ``now`` (unfinished jobs are dropped)."""
        try:
            tenant = self.tenants[name]
        except KeyError:
            raise ValidationError(f"unknown tenant {name!r}") from None
        if tenant.departure_time is None or tenant.departure_time > now:
            tenant.departure_time = now
        self._rounder.forget(name)
        self.invalidate_warm_cache()

    def fail_devices(self, device_ids: Sequence[int]) -> None:
        """Fail devices mid-simulation; flushes the warm-start memo."""
        self.topology.fail_devices(list(device_ids))
        self.invalidate_warm_cache()

    def repair_devices(self, device_ids: Sequence[int]) -> None:
        """Repair devices mid-simulation; flushes the warm-start memo."""
        self.topology.repair_devices(list(device_ids))
        self.invalidate_warm_cache()

    def invalidate_warm_cache(self) -> None:
        """Drop every memoized decision (shape-changing mutation fallback).

        Correctness never depends on this — the content keys already
        force a cold solve whenever any scheduler input changed — but
        shape changes (tenant churn, device failure/repair) make the old
        entries unreachable dead weight, so the mutation hooks flush
        them eagerly.
        """
        if self._decision_cache.invalidate():
            self.warm_stats.invalidations += 1

    def set_tenant_weight(self, name: str, weight: float) -> None:
        """Re-weight a tenant mid-simulation (fleet quota rebalance).

        The scheduler's decision key covers tenant weights, so a weight
        change already forces a cold solve; the explicit memo flush just
        drops the now-unreachable entries eagerly, like the other
        mutation hooks.  Weights must stay positive (the
        :class:`~repro.cluster.tenant.Tenant` invariant).
        """
        if weight <= 0:
            raise ValidationError("tenant weight must be positive")
        try:
            tenant = self.tenants[name]
        except KeyError:
            raise ValidationError(f"unknown tenant {name!r}") from None
        if tenant.weight != float(weight):
            tenant.weight = float(weight)
            self.invalidate_warm_cache()

    def add_job(self, tenant_name: str, job: Job) -> None:
        """Submit one more job to an existing tenant (demand spike)."""
        try:
            tenant = self.tenants[tenant_name]
        except KeyError:
            raise ValidationError(f"unknown tenant {tenant_name!r}") from None
        tenant.add_job(job)

    def _drain_events(self, now: float) -> int:
        """Apply every event due at or before ``now``; returns the count."""
        fired = 0
        while self._event_heap and self._event_heap[0][0] <= now:
            _, _, event = heapq.heappop(self._event_heap)
            event.apply(self, now)
            fired += 1
        self.events_applied += fired
        return fired

    # -- Monte-Carlo sweeps ----------------------------------------------------
    @staticmethod
    def run_sweep(
        factory: Callable[[int], "ClusterSimulator"],
        seeds: Sequence[int],
        *,
        backend: BackendSpec = "auto",
        max_workers: Optional[int] = None,
    ) -> List[Any]:
        """Run ``factory(seed).run()`` for every seed, fanned out to workers.

        ``factory`` builds one fresh, independent runnable per seed —
        usually a simulator (topology, tenants, scheduler, config), but
        any object with a ``run()`` method works, so scenario sweeps pass
        a :class:`~repro.scenarios.runner.ScenarioRunner` factory (see
        :func:`repro.scenarios.scenario_sweep`).  It must be a
        module-level callable (or :func:`functools.partial` of one) for
        the process backend, and the sweep degrades to threads with a
        :class:`RuntimeWarning` when it is not picklable.  Results come
        back in seed order, one ``factory(seed).run()`` value each —
        :class:`~repro.cluster.metrics.MetricsCollector` for simulators,
        :class:`~repro.scenarios.runner.ScenarioResult` for scenario
        runners.
        """
        payloads = [(factory, int(seed)) for seed in seeds]
        resolved = get_backend(backend, max_workers, task_count=len(payloads))
        if isinstance(resolved, ProcessBackend) and not probe_picklable(payloads):
            warnings.warn(
                "sweep factory is not picklable; falling back to the thread "
                "backend (define the factory at module level to use processes)",
                RuntimeWarning,
                stacklevel=2,
            )
            resolved = ThreadBackend(resolved.max_workers)
        return resolved.map(_run_sweep_entry, payloads)

    # -- main loop -------------------------------------------------------------
    def run(self) -> MetricsCollector:
        # events drain at round starts, so nothing after the final round's
        # start can ever fire: such events must neither hold the idle-stop
        # hostage nor vanish silently
        final_start = (self.config.num_rounds - 1) * self.config.round_duration
        for round_index in range(self.config.num_rounds):
            now = round_index * self.config.round_duration
            if round_index in self.config.device_repairs:
                self.repair_devices(self.config.device_repairs[round_index])
            if round_index in self.config.device_failures:
                self.fail_devices(self.config.device_failures[round_index])
            # dynamic events may mutate tenants *and* topology, so they
            # drain before capacities and the active set are computed
            self._drain_events(now)
            self._capacities = self.topology.capacities()
            active = self._active_tenants(now)
            if not active:
                fireable = (
                    self._event_heap and self._event_heap[0][0] <= final_start
                )
                if (
                    self.config.stop_when_idle
                    and self._all_work_done(now)
                    and not fireable
                ):
                    break
                self.metrics.record_round(RoundMetrics(round_index, now))
                continue
            self._run_round(round_index, now, active)
        if self._event_heap:
            warnings.warn(
                f"{len(self._event_heap)} scheduled event(s) fall after the "
                f"final round start (t={final_start:g}s) and were never "
                "applied; extend num_rounds or move the events earlier",
                RuntimeWarning,
                stacklevel=2,
            )
        return self.metrics

    def _run_round(self, round_index: int, now: float, active: List[Tenant]) -> None:
        profiles = self._measure_profiles(active, now)
        decision = self._compute_decision(active, profiles)
        self._validate_decision(decision, active)

        min_demands = None
        if self.config.use_min_demand_rule:
            min_demands = {
                tenant.name: tenant.min_worker_demand(now) for tenant in active
            }
        rounding = self._rounder.round_shares(
            decision.tenant_shares, self._capacities, min_demands
        )
        placement = self.placer.place_round(rounding.grants, self.tenants, now)

        placed_jobs = set()
        for job_placement in placement.placements:
            job = job_placement.job
            placed_jobs.add(job.job_id)
            job.advance(
                now, job_placement.iterations_per_second, self.config.round_duration
            )
            if job.is_finished and job.job_id not in self._recorded_completions:
                self._recorded_completions.add(job.job_id)
                self.metrics.record_completion(
                    CompletionRecord(
                        job_id=job.job_id,
                        tenant=job.tenant,
                        model_name=job.model_name,
                        submit_time=job.submit_time,
                        finish_time=float(job.finish_time),
                    )
                )
        starved_count = 0
        for tenant in active:
            for job in tenant.active_jobs(now):
                if job.job_id not in placed_jobs:
                    job.starve()
                    starved_count += 1

        self.metrics.record_round(
            RoundMetrics(
                round_index=round_index,
                time=now,
                estimated=dict(decision.estimated),
                actual=placement.tenant_throughput(),
                actual_by_model=placement.model_throughput(),
                straggler_workers=placement.straggler_workers(),
                cross_host_jobs=placement.cross_host_jobs(),
                cross_type_jobs=placement.cross_type_jobs(),
                starved_jobs=starved_count,
                devices_used=sum(
                    len(job_placement.devices)
                    for job_placement in placement.placements
                ),
                solver_seconds=decision.solver_seconds,
            )
        )

    def _compute_decision(
        self, active: List[Tenant], profiles: Dict[str, Dict[str, np.ndarray]]
    ) -> SchedulerDecision:
        """One round's fluid shares, warm-started when provably safe.

        Routes through the simulator's decision *gateway*: the cache
        stage memoizes prior decisions under the scheduler's own content
        key (supplied per request via ``Request.key``) and a repeat key
        short-circuits the solve with a deep copy of the stored decision
        (``solver_seconds`` reported as 0.0 — no LP ran).  A ``None``
        key — warm starting disabled, or a scheduler whose decision
        depends on more than the key can cover — dispatches with
        ``use_cache=False`` and always solves cold.
        """
        key = None
        if self.config.warm_start:
            key = self.scheduler.decision_key(active, profiles, self._capacities)
        response = self._decision_gateway.dispatch(
            Request(
                instance=(active, profiles, self._capacities),
                scheduler="cluster-round",
                use_cache=key is not None,
                key=key,
            )
        )
        if response.from_cache:
            self.warm_stats.warm_hits += 1
        else:
            self.warm_stats.cold_solves += 1
        return response.result

    # -- helpers ------------------------------------------------------------------
    def _active_tenants(self, now: float) -> List[Tenant]:
        active = []
        for tenant in self.tenants.values():
            if tenant.departure_time is not None and now >= tenant.departure_time:
                self._rounder.forget(tenant.name)
                continue
            if tenant.arrival_time > now:
                continue
            if tenant.has_active_jobs(now):
                active.append(tenant)
            else:
                self._rounder.forget(tenant.name)
        return active

    def _all_work_done(self, now: float) -> bool:
        for tenant in self.tenants.values():
            if tenant.departure_time is not None and now >= tenant.departure_time:
                continue
            if not tenant.all_done(now):
                return False
        return True

    def _measure_profiles(
        self, active: List[Tenant], now: float
    ) -> Dict[str, Dict[str, np.ndarray]]:
        profiles: Dict[str, Dict[str, np.ndarray]] = {}
        for tenant in active:
            measured = self._profiler.profile_tenant(tenant, now)
            factors = self.config.misreports.get(tenant.name)
            if factors is not None:
                factors = np.asarray(factors, dtype=float)
                lied: Dict[str, np.ndarray] = {}
                for model_name, vector in measured.items():
                    fake = vector * factors
                    fake = fake / fake[0]
                    lied[model_name] = np.maximum.accumulate(fake)
                measured = lied
            profiles[tenant.name] = measured
        return profiles

    @staticmethod
    def _validate_decision(
        decision: SchedulerDecision, active: List[Tenant]
    ) -> None:
        missing = {tenant.name for tenant in active} - set(decision.tenant_shares)
        if missing:
            raise SimulationError(
                f"scheduler returned no share for tenants: {sorted(missing)}"
            )
