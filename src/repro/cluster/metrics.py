"""Metrics collection for cluster simulations.

The paper's headline metric is *normalised throughput*: delivered training
speed in units of "equivalent slowest-type GPUs" (§6.1.4).  Per round the
collector records each tenant's *estimated* throughput (the fair-share
evaluator's fluid view) and *actual* throughput (post-rounding, placement,
straggler, and network effects) — the two bars of Fig. 7/8 — plus JCTs,
straggler counts, and solver overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np


@dataclass
class RoundMetrics:
    """One scheduling round's outcome."""

    round_index: int
    time: float
    estimated: Dict[str, float] = field(default_factory=dict)
    actual: Dict[str, float] = field(default_factory=dict)
    actual_by_model: Dict[tuple, float] = field(default_factory=dict)
    straggler_workers: int = 0
    cross_host_jobs: int = 0
    cross_type_jobs: int = 0
    starved_jobs: int = 0
    devices_used: int = 0
    solver_seconds: float = 0.0

    @property
    def total_estimated(self) -> float:
        return float(sum(self.estimated.values()))

    @property
    def total_actual(self) -> float:
        return float(sum(self.actual.values()))


@dataclass
class CompletionRecord:
    job_id: int
    tenant: str
    model_name: str
    submit_time: float
    finish_time: float

    @property
    def jct(self) -> float:
        return self.finish_time - self.submit_time


class MetricsCollector:
    """Accumulates per-round metrics and completion records.

    ``on_round`` is an optional observer called with each
    :class:`RoundMetrics` *before* it is stored — the streaming hook the
    scenario runner and the fleet metrics sink use to distil rounds as
    they happen.  ``keep_rounds=False`` drops each round after the
    observer has seen it, so a long replay's memory stays bounded by
    the observer's own state instead of O(rounds × tenants); the
    round-based aggregate views (``mean_total_actual``,
    ``tenant_series``, ...) then see an empty history and return their
    empty-input defaults.  Completions are always kept — they are
    O(jobs), not O(rounds), and JCT/makespan summaries need them.
    """

    def __init__(
        self,
        on_round: Optional[Callable[[RoundMetrics], None]] = None,
        keep_rounds: bool = True,
    ) -> None:
        self.on_round = on_round
        self.keep_rounds = bool(keep_rounds)
        self.rounds: List[RoundMetrics] = []
        self.completions: List[CompletionRecord] = []
        #: Rounds recorded, whether or not they were kept.
        self.rounds_recorded = 0

    # -- recording ---------------------------------------------------------
    def record_round(self, metrics: RoundMetrics) -> None:
        self.rounds_recorded += 1
        if self.on_round is not None:
            self.on_round(metrics)
        if self.keep_rounds:
            self.rounds.append(metrics)

    def record_completion(self, record: CompletionRecord) -> None:
        self.completions.append(record)

    # -- aggregate views ------------------------------------------------------
    def mean_total_estimated(self, skip_empty: bool = True) -> float:
        values = [
            r.total_estimated
            for r in self.rounds
            if not skip_empty or r.estimated
        ]
        return float(np.mean(values)) if values else 0.0

    def mean_total_actual(self, skip_empty: bool = True) -> float:
        values = [
            r.total_actual for r in self.rounds if not skip_empty or r.actual
        ]
        return float(np.mean(values)) if values else 0.0

    def tenant_series(self, tenant: str, kind: str = "actual") -> List[float]:
        """Per-round throughput series for one tenant (Fig. 4/5 curves)."""
        series = []
        for round_metrics in self.rounds:
            source = (
                round_metrics.actual if kind == "actual" else round_metrics.estimated
            )
            series.append(float(source.get(tenant, 0.0)))
        return series

    def model_series(self, tenant: str, model_name: str) -> List[float]:
        """Per-round delivered throughput for one (tenant, model) pair."""
        return [
            float(round_metrics.actual_by_model.get((tenant, model_name), 0.0))
            for round_metrics in self.rounds
        ]

    def mean_tenant_throughput(self, tenant: str, kind: str = "actual") -> float:
        series = [
            value for value in self.tenant_series(tenant, kind) if value > 0.0
        ]
        return float(np.mean(series)) if series else 0.0

    def jcts(self, tenant: Optional[str] = None) -> List[float]:
        return [
            record.jct
            for record in self.completions
            if tenant is None or record.tenant == tenant
        ]

    def mean_jct(self, tenant: Optional[str] = None) -> float:
        values = self.jcts(tenant)
        return float(np.mean(values)) if values else 0.0

    def total_straggler_workers(self) -> int:
        return sum(r.straggler_workers for r in self.rounds)

    def total_cross_type_jobs(self) -> int:
        return sum(r.cross_type_jobs for r in self.rounds)

    def total_starvation_rounds(self) -> int:
        return sum(r.starved_jobs for r in self.rounds)

    def mean_solver_seconds(self) -> float:
        values = [r.solver_seconds for r in self.rounds if r.estimated]
        return float(np.mean(values)) if values else 0.0

    def makespan(self) -> float:
        if not self.completions:
            return 0.0
        return max(record.finish_time for record in self.completions)

    def estimated_actual_deviation(self) -> float:
        """Mean relative gap between evaluator estimate and delivery (Fig. 10b).

        Placement effects (packing gains, straggler/contention losses) are
        part of the gap by design; the sensitivity experiment compares the
        gap *across error rates*, so shared placement effects cancel.
        """
        gaps = []
        for round_metrics in self.rounds:
            estimated = round_metrics.total_estimated
            if estimated > 0:
                gaps.append(
                    abs(estimated - round_metrics.total_actual) / estimated
                )
        return float(np.mean(gaps)) if gaps else 0.0
