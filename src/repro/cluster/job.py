"""DL training jobs as the simulator executes them.

A job is ``num_workers`` data-parallel workers training for
``total_iterations`` iterations.  Its ground-truth per-worker throughput on
each GPU type (iterations/second) comes from the workload model zoo; the
scheduler only ever sees the *profiled* speedup vector, which may carry
error (Fig. 10b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import SimulationError, ValidationError


class JobState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass
class Job:
    """One DL training job owned by a tenant."""

    job_id: int
    tenant: str
    model_name: str
    num_workers: int
    total_iterations: float
    true_throughput: np.ndarray  # iterations/sec per worker, per GPU type
    submit_time: float = 0.0
    # elastic jobs (§8) may run on any worker count in
    # [min_workers, num_workers]; num_workers is then the *maximum*
    elastic: bool = False
    min_workers: int = 1

    state: JobState = JobState.PENDING
    done_iterations: float = 0.0
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    starvation_rounds: int = 0
    rounds_scheduled: int = 0

    def __post_init__(self) -> None:
        self.true_throughput = np.asarray(self.true_throughput, dtype=float)
        if self.num_workers < 1:
            raise ValidationError(f"job {self.job_id}: num_workers must be >= 1")
        if not 1 <= self.min_workers <= self.num_workers:
            raise ValidationError(
                f"job {self.job_id}: min_workers must lie in [1, num_workers]"
            )
        if self.total_iterations <= 0:
            raise ValidationError(f"job {self.job_id}: total_iterations must be > 0")
        if self.true_throughput.ndim != 1 or np.any(self.true_throughput <= 0):
            raise ValidationError(
                f"job {self.job_id}: throughput must be a positive vector"
            )

    # -- profile views ---------------------------------------------------------
    @property
    def speedup_vector(self) -> np.ndarray:
        """Ground-truth speedups, normalised to the slowest GPU type."""
        return self.true_throughput / self.true_throughput[0]

    @property
    def remaining_iterations(self) -> float:
        return max(0.0, self.total_iterations - self.done_iterations)

    @property
    def is_finished(self) -> bool:
        return self.state == JobState.FINISHED

    @property
    def jct(self) -> Optional[float]:
        """Job completion time (finish - submit), once finished."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    # -- execution --------------------------------------------------------------
    def advance(self, now: float, iterations_per_second: float, duration: float) -> float:
        """Run the job for up to ``duration`` seconds at the given speed.

        Returns the elapsed time actually used (shorter than ``duration``
        when the job finishes mid-round, so JCTs interpolate within a
        scheduling round).
        """
        if self.is_finished:
            raise SimulationError(f"job {self.job_id} already finished")
        if iterations_per_second < 0 or duration < 0:
            raise SimulationError("negative progress rate or duration")
        if self.start_time is None:
            self.start_time = now
        self.state = JobState.RUNNING
        self.rounds_scheduled += 1

        if iterations_per_second == 0:
            return duration
        time_to_finish = self.remaining_iterations / iterations_per_second
        if time_to_finish <= duration:
            self.done_iterations = self.total_iterations
            self.state = JobState.FINISHED
            self.finish_time = now + time_to_finish
            return time_to_finish
        self.done_iterations += iterations_per_second * duration
        return duration

    def starve(self) -> None:
        """Record one round without any allocated GPU."""
        if not self.is_finished:
            self.starvation_rounds += 1
            self.state = JobState.PENDING


def make_job(
    job_id: int,
    tenant: str,
    model_name: str,
    throughput: Sequence[float],
    num_workers: int = 1,
    total_iterations: float = 10_000.0,
    submit_time: float = 0.0,
    elastic: bool = False,
    min_workers: int = 1,
) -> Job:
    """Convenience constructor used by workload generators and tests."""
    return Job(
        job_id=job_id,
        tenant=tenant,
        model_name=model_name,
        num_workers=num_workers,
        total_iterations=total_iterations,
        true_throughput=np.asarray(throughput, dtype=float),
        submit_time=submit_time,
        elastic=elastic,
        min_workers=min_workers,
    )
