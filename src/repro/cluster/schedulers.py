"""Round-level fair-share schedulers: allocator -> fluid shares per tenant.

These adapters sit between the cluster simulator and the allocation
algorithms.  Each round, the simulator hands a scheduler the active
tenants, their *measured* speedup profiles, and the capacity vector; the
scheduler returns fluid (fractional) shares plus its own throughput
estimate — the "estimated" bars of Fig. 7/8.

Two adapters exist:

* :class:`OEFScheduler` — runs :class:`~repro.core.weighted.WeightedOEF`,
  so weights and multiple job types per tenant work out of the box;
* :class:`SingleProfileScheduler` — wraps any single-vector
  :class:`~repro.core.base.Allocator` (Max-Min, Gandiva_fair, Gavel).
  These baselines cannot express several job types per tenant (§2.4), so
  the adapter represents each tenant by its *dominant* job type (the one
  with the most active jobs, matching the paper's evaluation setup where
  baseline comparisons use single-type tenants).

:func:`make_fair_share_scheduler` builds either adapter from a registry
name or alias, so the simulator, experiments, and examples never
construct adapters by hand.
"""

from __future__ import annotations

import abc
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.core.speedup import SpeedupMatrix
from repro.core.virtual import JobTypeSpec, TenantSpec
from repro.core.weighted import WeightedOEF
from repro.cluster.tenant import Tenant
from repro.exceptions import SimulationError
from repro.registry import create_scheduler, resolve_scheduler_name


@dataclass
class SchedulerDecision:
    """Fluid shares and the evaluator's own throughput estimate."""

    tenant_shares: Dict[str, np.ndarray]
    estimated: Dict[str, float]
    solver_seconds: float = 0.0
    job_type_shares: Dict[str, Dict[str, np.ndarray]] = field(default_factory=dict)


class FairShareScheduler(abc.ABC):
    """One fair-share evaluation per scheduling round."""

    name: str = "scheduler"

    @abc.abstractmethod
    def shares(
        self,
        tenants: Sequence[Tenant],
        profiles: Dict[str, Dict[str, np.ndarray]],
        capacities: np.ndarray,
    ) -> SchedulerDecision:
        """Compute fluid shares for the given round.

        ``profiles`` maps tenant name -> job type -> measured speedup
        vector (already normalised, slowest type first).
        """

    def decision_key(
        self,
        tenants: Sequence[Tenant],
        profiles: Dict[str, Dict[str, np.ndarray]],
        capacities: np.ndarray,
    ) -> Optional[bytes]:
        """Content key over *everything* :meth:`shares` reads, or ``None``.

        The simulator's warm-start path memoizes :class:`SchedulerDecision`
        objects by this key: a repeat key is served from the previous
        solve instead of re-running the LP, which is sound exactly
        because the key covers every input the decision depends on and
        :meth:`shares` is deterministic.  Return ``None`` (the default)
        when the decision depends on state beyond the three arguments —
        e.g. job-level scheduling — so every round solves cold.
        """
        return None


class OEFScheduler(FairShareScheduler):
    """OEF fair-share evaluator (either environment)."""

    def __init__(self, mode: str = "noncooperative", backend: str = "auto"):
        if mode not in ("noncooperative", "cooperative"):
            raise SimulationError(f"unknown OEF mode {mode!r}")
        self.mode = mode
        self.backend = backend
        self.name = f"oef-{'noncoop' if mode == 'noncooperative' else 'coop'}"

    def shares(
        self,
        tenants: Sequence[Tenant],
        profiles: Dict[str, Dict[str, np.ndarray]],
        capacities: np.ndarray,
    ) -> SchedulerDecision:
        specs: List[TenantSpec] = []
        for tenant in tenants:
            tenant_profiles = profiles[tenant.name]
            job_types = [
                JobTypeSpec.of(model_name, vector)
                for model_name, vector in sorted(tenant_profiles.items())
            ]
            specs.append(TenantSpec.of(tenant.name, job_types, weight=tenant.weight))
        start = time.perf_counter()
        merged = WeightedOEF(mode=self.mode, backend=self.backend).allocate(
            specs, capacities
        )
        elapsed = time.perf_counter() - start
        return SchedulerDecision(
            tenant_shares={name: share.copy() for name, share in merged.tenant_shares.items()},
            estimated=dict(merged.tenant_throughput),
            solver_seconds=elapsed,
            job_type_shares={
                tenant: {jt: share.copy() for jt, share in by_type.items()}
                for tenant, by_type in merged.job_type_shares.items()
            },
        )

    def decision_key(self, tenants, profiles, capacities) -> Optional[bytes]:
        # shares() is a pure function of (name, weight, profiles) per
        # tenant in order, plus capacities — hash exactly those
        digest = hashlib.sha256()
        for tenant in tenants:
            digest.update(tenant.name.encode())
            digest.update(repr(float(tenant.weight)).encode())
            for model_name, vector in sorted(profiles[tenant.name].items()):
                digest.update(model_name.encode())
                digest.update(np.ascontiguousarray(vector, dtype=float).tobytes())
            digest.update(b"\x1e")
        digest.update(np.ascontiguousarray(capacities, dtype=float).tobytes())
        return digest.digest()


class ElasticOEFScheduler(FairShareScheduler):
    """Job-level OEF for elastic workloads (§8 extension).

    Every active job becomes a virtual user (see
    :class:`repro.core.elastic.JobLevelOEF`), so jobs within a tenant get
    equal shares rather than round-robin time slices.  Pair this with
    elastic jobs (``Job.elastic = True``) so grants of any size are
    consumable.
    """

    def __init__(self, mode: str = "noncooperative", backend: str = "auto"):
        if mode not in ("noncooperative", "cooperative"):
            raise SimulationError(f"unknown OEF mode {mode!r}")
        from repro.core.elastic import JobLevelOEF

        self._job_level = JobLevelOEF(mode=mode, backend=backend)
        self.mode = mode
        self.name = f"oef-elastic-{'noncoop' if mode == 'noncooperative' else 'coop'}"

    def shares(
        self,
        tenants: Sequence[Tenant],
        profiles: Dict[str, Dict[str, np.ndarray]],
        capacities: np.ndarray,
    ) -> SchedulerDecision:
        # job-level scheduling uses the jobs' own (profiled) speedups; the
        # tenant-level profiles parameter is accepted for interface parity
        start = time.perf_counter()
        allocation = self._job_level.allocate(tenants, capacities)
        elapsed = time.perf_counter() - start
        return SchedulerDecision(
            tenant_shares={
                name: share.copy()
                for name, share in allocation.tenant_shares.items()
            },
            estimated=dict(allocation.tenant_throughput),
            solver_seconds=elapsed,
        )

    # job-level scheduling reads the tenants' live job objects, which the
    # three decision_key arguments cannot capture — inherit the ``None``
    # default so every round solves cold (warm replay stays correct)


class SingleProfileScheduler(FairShareScheduler):
    """Adapter for baselines that take one speedup vector per tenant.

    Accepts either an :class:`Allocator` instance or a registry
    name/alias (with constructor ``options`` forwarded to the factory).
    """

    def __init__(self, allocator: Union[Allocator, str], **options):
        if isinstance(allocator, str):
            allocator = create_scheduler(allocator, **options)
        elif options:
            raise SimulationError(
                "constructor options require a scheduler name, not an instance"
            )
        self.allocator = allocator
        self.name = allocator.name

    def shares(
        self,
        tenants: Sequence[Tenant],
        profiles: Dict[str, Dict[str, np.ndarray]],
        capacities: np.ndarray,
    ) -> SchedulerDecision:
        rows: List[np.ndarray] = []
        names: List[str] = []
        for tenant in tenants:
            tenant_profiles = profiles[tenant.name]
            dominant = self._dominant_job_type(tenant, tenant_profiles)
            rows.append(tenant_profiles[dominant])
            names.append(tenant.name)
        matrix = SpeedupMatrix(
            np.vstack(rows), users=names, normalise=True, require_monotone=False
        )
        instance = ProblemInstance(matrix, capacities)
        start = time.perf_counter()
        allocation = self.allocator.allocate(instance)
        elapsed = time.perf_counter() - start
        shares = {
            name: allocation.matrix[row].copy() for row, name in enumerate(names)
        }
        estimated = {
            name: float(matrix.values[row] @ allocation.matrix[row])
            for row, name in enumerate(names)
        }
        return SchedulerDecision(
            tenant_shares=shares, estimated=estimated, solver_seconds=elapsed
        )

    def decision_key(self, tenants, profiles, capacities) -> Optional[bytes]:
        # the baseline adapter reads one row per tenant — the *dominant*
        # job type's profile, which shifts with active-job counts — so
        # the key hashes the selected (model, row) pairs, not the raw
        # profile dict: count changes that keep the dominant type fixed
        # still reuse the decision, count changes that flip it do not
        digest = hashlib.sha256()
        for tenant in tenants:
            dominant = self._dominant_job_type(tenant, profiles[tenant.name])
            digest.update(tenant.name.encode())
            digest.update(dominant.encode())
            digest.update(
                np.ascontiguousarray(
                    profiles[tenant.name][dominant], dtype=float
                ).tobytes()
            )
            digest.update(b"\x1e")
        digest.update(np.ascontiguousarray(capacities, dtype=float).tobytes())
        return digest.digest()

    @staticmethod
    def _dominant_job_type(
        tenant: Tenant, tenant_profiles: Dict[str, np.ndarray]
    ) -> str:
        """The job type with the most active jobs (deterministic ties)."""
        counts = {model: len(jobs) for model, jobs in tenant.job_types().items()}
        return max(
            tenant_profiles.keys(),
            key=lambda model: (counts.get(model, 0), model),
        )


#: Canonical OEF registry names -> the WeightedOEF mode behind the adapter.
_OEF_MODES = {"oef-noncoop": "noncooperative", "oef-coop": "cooperative"}
#: Elastic (job-level) adapter names; these are cluster-only personalities
#: with no instance-level Allocator, so they live outside the registry.
_ELASTIC_MODES = {
    "oef-elastic-noncoop": "noncooperative",
    "oef-elastic-coop": "cooperative",
}


def make_fair_share_scheduler(name: str, **options) -> FairShareScheduler:
    """Build a round-level scheduler from a registry name or alias.

    OEF names map to :class:`OEFScheduler` (weights + multi-job-type via
    :class:`~repro.core.weighted.WeightedOEF`), ``oef-elastic-*`` to
    :class:`ElasticOEFScheduler`, and every other registered allocator to
    a :class:`SingleProfileScheduler` wrapping it.  ``options`` forward to
    the chosen constructor.
    """
    if name in _ELASTIC_MODES:
        return ElasticOEFScheduler(mode=_ELASTIC_MODES[name], **options)
    canonical = resolve_scheduler_name(name)
    if canonical in _OEF_MODES:
        return OEFScheduler(mode=_OEF_MODES[canonical], **options)
    return SingleProfileScheduler(create_scheduler(canonical, **options))
