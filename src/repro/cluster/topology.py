"""Cluster topology: hosts, device inventories, and capacity vectors."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.gpu import GPUDevice, GPUType, Host
from repro.exceptions import ValidationError


@dataclass(frozen=True)
class HostGroupSpec:
    """``num_hosts`` machines, each with ``gpus_per_host`` devices of one type."""

    gpu_type_name: str
    num_hosts: int
    gpus_per_host: int

    def __post_init__(self) -> None:
        if self.num_hosts <= 0 or self.gpus_per_host <= 0:
            raise ValidationError("host groups need positive host and GPU counts")


class ClusterTopology:
    """The physical cluster: GPU types (slowest first), hosts, devices.

    The order of ``groups`` defines the GPU-type ranking — list the slowest
    type first, exactly as speedup matrices order their columns.
    """

    def __init__(self, groups: Sequence[HostGroupSpec]):
        if not groups:
            raise ValidationError("a cluster needs at least one host group")
        names = [group.gpu_type_name for group in groups]
        if len(set(names)) != len(names):
            raise ValidationError("GPU type names must be unique across groups")

        self.gpu_types: List[GPUType] = [
            GPUType(rank=rank, name=group.gpu_type_name)
            for rank, group in enumerate(groups)
        ]
        self.hosts: List[Host] = []
        self.devices: List[GPUDevice] = []

        host_id = 0
        device_id = 0
        for gpu_type, group in zip(self.gpu_types, groups):
            for _ in range(group.num_hosts):
                host_devices = []
                for _ in range(group.gpus_per_host):
                    device = GPUDevice(
                        device_id=device_id, gpu_type=gpu_type, host_id=host_id
                    )
                    host_devices.append(device)
                    self.devices.append(device)
                    device_id += 1
                self.hosts.append(Host(host_id, gpu_type, host_devices))
                host_id += 1

    # -- capacity views -------------------------------------------------------
    @property
    def num_gpu_types(self) -> int:
        return len(self.gpu_types)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def gpu_type_names(self) -> List[str]:
        return [gpu_type.name for gpu_type in self.gpu_types]

    def capacities(self) -> np.ndarray:
        """Healthy device count per GPU type, indexed by type rank."""
        counts = np.zeros(self.num_gpu_types)
        for device in self.devices:
            if not device.failed:
                counts[device.gpu_type.rank] += 1
        return counts

    def fail_devices(self, device_ids) -> None:
        """Mark the given devices failed (failure injection)."""
        wanted = set(device_ids)
        for device in self.devices:
            if device.device_id in wanted:
                device.fail()

    def repair_devices(self, device_ids) -> None:
        wanted = set(device_ids)
        for device in self.devices:
            if device.device_id in wanted:
                device.repair()

    def hosts_of_type(self, rank: int) -> List[Host]:
        return [host for host in self.hosts if host.gpu_type.rank == rank]

    def free_count_by_type(self) -> np.ndarray:
        counts = np.zeros(self.num_gpu_types, dtype=int)
        for device in self.devices:
            if device.is_free:
                counts[device.gpu_type.rank] += 1
        return counts

    def release_all(self) -> None:
        """Unbind every healthy device (start of a scheduling round)."""
        for device in self.devices:
            if not device.failed:
                device.release()

    def type_index(self, name: str) -> int:
        for gpu_type in self.gpu_types:
            if gpu_type.name == name:
                return gpu_type.rank
        raise ValidationError(f"unknown GPU type {name!r}")

    def summary(self) -> Dict[str, Tuple[int, int]]:
        """``type name -> (hosts, devices)`` for reports."""
        result: Dict[str, Tuple[int, int]] = {}
        for gpu_type in self.gpu_types:
            hosts = self.hosts_of_type(gpu_type.rank)
            result[gpu_type.name] = (
                len(hosts),
                sum(host.num_devices for host in hosts),
            )
        return result


def paper_cluster() -> ClusterTopology:
    """The paper's testbed: 8x 3070 + 8x 3080 + 8x 3090, four per host."""
    return ClusterTopology(
        [
            HostGroupSpec("rtx3070", num_hosts=2, gpus_per_host=4),
            HostGroupSpec("rtx3080", num_hosts=2, gpus_per_host=4),
            HostGroupSpec("rtx3090", num_hosts=2, gpus_per_host=4),
        ]
    )


def scaled_cluster(
    gpu_type_names: Sequence[str],
    devices_per_type: int,
    gpus_per_host: int = 4,
) -> ClusterTopology:
    """A homogeneous-per-type cluster scaled up for large experiments."""
    if devices_per_type % gpus_per_host:
        raise ValidationError("devices_per_type must be a multiple of gpus_per_host")
    return ClusterTopology(
        [
            HostGroupSpec(name, devices_per_type // gpus_per_host, gpus_per_host)
            for name in gpu_type_names
        ]
    )
