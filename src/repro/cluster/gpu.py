"""GPU devices, types, and hosts — the physical cluster model.

The paper's testbed is 24 GPUs: eight RTX 3070, eight 3080, eight 3090,
co-located four-per-host.  :func:`repro.cluster.topology.paper_cluster`
builds exactly that; arbitrary topologies are supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.exceptions import ValidationError


@dataclass(frozen=True, order=True)
class GPUType:
    """One accelerator generation.

    ``rank`` orders types slowest-first (rank 0 = slowest), matching the
    column order of every speedup matrix.  ``memory_gb`` is informational
    (capacity-based admission is out of the paper's scope).
    """

    rank: int
    name: str
    memory_gb: float = 24.0

    def __str__(self) -> str:
        return self.name


@dataclass
class GPUDevice:
    """A single physical device on a host."""

    device_id: int
    gpu_type: GPUType
    host_id: int
    # the job currently bound to this device, if any (job ids are opaque)
    assigned_job: Optional[int] = None
    # failed devices are invisible to capacity accounting and placement
    failed: bool = False

    @property
    def is_free(self) -> bool:
        return self.assigned_job is None and not self.failed

    def release(self) -> None:
        self.assigned_job = None

    def fail(self) -> None:
        """Mark the device failed; any bound job loses this worker."""
        self.failed = True
        self.assigned_job = None

    def repair(self) -> None:
        self.failed = False


@dataclass
class Host:
    """A machine holding several co-located devices of one GPU type."""

    host_id: int
    gpu_type: GPUType
    devices: List[GPUDevice] = field(default_factory=list)

    def __post_init__(self) -> None:
        for device in self.devices:
            if device.gpu_type != self.gpu_type:
                raise ValidationError(
                    f"host {self.host_id} mixes GPU types "
                    f"({device.gpu_type} vs {self.gpu_type})"
                )

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def free_devices(self) -> List[GPUDevice]:
        return [device for device in self.devices if device.is_free]

    @property
    def num_free(self) -> int:
        return sum(1 for device in self.devices if device.is_free)
