"""The profiling agent (§4.1) with controllable measurement error.

Tenants submit one representative task per job type; the agent runs a few
mini-batches and reports a speedup vector to the fair-share evaluator.
Real profiling is noisy, so the agent supports a multiplicative error knob
used by the sensitivity experiment (Fig. 10b): each non-reference entry is
scaled by a factor drawn from ``[1 - error_rate, 1 + error_rate]`` (or a
fixed bias when ``deterministic_bias`` is set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster.tenant import Tenant
from repro.exceptions import ValidationError


@dataclass
class ProfilingAgent:
    """Measures (and possibly distorts) tenant speedup profiles."""

    error_rate: float = 0.0
    deterministic_bias: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.error_rate < 0 or self.error_rate >= 1:
            raise ValidationError("error_rate must lie in [0, 1)")
        if self.deterministic_bias is not None and self.deterministic_bias <= -1:
            raise ValidationError("deterministic_bias must be > -1")
        self._rng = np.random.default_rng(self.seed)

    def profile_tenant(
        self, tenant: Tenant, now: Optional[float] = None
    ) -> Dict[str, np.ndarray]:
        """Measured speedup vector per job type, normalised to slot 0.

        The reference (slowest) GPU type is the normalisation anchor, so
        error applies to the relative entries only — matching how relative
        profiling error manifests in practice.
        """
        profiles: Dict[str, np.ndarray] = {}
        for model_name, truth in tenant.true_speedup_profile(now).items():
            measured = truth.copy()
            if self.deterministic_bias is not None:
                factor = 1.0 + self.deterministic_bias
                measured[1:] = measured[1:] * factor
            elif self.error_rate > 0:
                factors = self._rng.uniform(
                    1.0 - self.error_rate, 1.0 + self.error_rate, size=measured.size - 1
                )
                measured[1:] = measured[1:] * factors
            # renormalise and keep the vector monotone so downstream
            # validation (slowest-type-first ordering) still holds
            measured = measured / measured[0]
            measured = np.maximum.accumulate(measured)
            profiles[model_name] = measured
        return profiles
