"""The straggler effect for cross-GPU-type data-parallel training (§4.4).

Synchronous data parallelism paces every worker to the slowest one: when a
job's workers span GPU types, each iteration waits for the workers on the
slowest assigned type, so fast-GPU workers idle during the periodic
gradient synchronisations.  OEF mitigates this structurally — Theorem 5.2
shows OEF allocations only ever mix *adjacent* GPU types — while baselines
may scatter a tenant across the full range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cluster.job import Job
from repro.exceptions import SimulationError


@dataclass(frozen=True)
class StragglerOutcome:
    """Effective execution profile of one job for one round."""

    per_worker_rate: float  # iterations/sec each worker contributes
    straggler_workers: int  # workers pinned below their GPU's native rate
    types_spanned: int


class StragglerModel:
    """Computes effective rates for jobs whose workers span GPU types.

    ``sync_fraction`` is the fraction of an iteration spent in gradient
    synchronisation; only that part is gated by the slowest worker.  The
    paper's qualitative model corresponds to ``sync_fraction = 1.0``
    (every worker fully paced by the slowest type), which is the default.
    """

    def __init__(self, sync_fraction: float = 1.0):
        if not 0.0 <= sync_fraction <= 1.0:
            raise SimulationError("sync_fraction must lie in [0, 1]")
        self.sync_fraction = sync_fraction

    def evaluate(self, job: Job, type_counts: Dict[int, int]) -> StragglerOutcome:
        """Effective per-worker rate given workers per GPU-type rank.

        ``type_counts`` maps GPU-type rank -> number of the job's workers
        placed on that type.  Raises if no workers were assigned.
        """
        if not type_counts or sum(type_counts.values()) == 0:
            raise SimulationError(f"job {job.job_id}: no workers assigned")
        rates = {
            rank: float(job.true_throughput[rank]) for rank in type_counts
        }
        slowest = min(rates.values())
        if len(type_counts) == 1:
            (rank,) = type_counts
            return StragglerOutcome(
                per_worker_rate=rates[rank],
                straggler_workers=0,
                types_spanned=1,
            )
        # blended rate: the synchronous part runs at the slowest type's
        # speed, the remainder at each worker's native speed; report the
        # average per-worker rate so job progress = rate * workers
        total_workers = sum(type_counts.values())
        native_average = (
            sum(rates[rank] * count for rank, count in type_counts.items())
            / total_workers
        )
        effective = (
            self.sync_fraction * slowest + (1.0 - self.sync_fraction) * native_average
        )
        stragglers = sum(
            count for rank, count in type_counts.items() if rates[rank] > slowest + 1e-12
        )
        return StragglerOutcome(
            per_worker_rate=effective,
            straggler_workers=stragglers,
            types_spanned=len(type_counts),
        )

    @staticmethod
    def adjacent_types_only(type_counts: Dict[int, int]) -> bool:
        """True when the assigned type ranks form a contiguous range."""
        ranks = sorted(type_counts)
        return ranks == list(range(ranks[0], ranks[-1] + 1))
