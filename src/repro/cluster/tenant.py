"""Tenants: job owners with weights and per-job-type speedup profiles.

A tenant owns a bag of jobs, possibly of several model families
("job types", §4.2.4).  Within a tenant, jobs are dispatched round-robin
with priority to the longest-starved job — the paper's §6.1.3 policy,
applied uniformly to OEF and all baselines for a fair comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cluster.job import Job
from repro.exceptions import ValidationError


@dataclass
class Tenant:
    """A cluster user with a weight and a set of jobs."""

    name: str
    weight: float = 1.0
    jobs: List[Job] = field(default_factory=list)
    arrival_time: float = 0.0
    departure_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValidationError(f"tenant {self.name!r}: weight must be positive")
        for job in self.jobs:
            if job.tenant != self.name:
                raise ValidationError(
                    f"job {job.job_id} belongs to {job.tenant!r}, not {self.name!r}"
                )

    # -- job management ----------------------------------------------------------
    def add_job(self, job: Job) -> None:
        if job.tenant != self.name:
            raise ValidationError(
                f"job {job.job_id} belongs to {job.tenant!r}, not {self.name!r}"
            )
        self.jobs.append(job)

    def active_jobs(self, now: Optional[float] = None) -> List[Job]:
        """Unfinished jobs that have been submitted by ``now``."""
        return [
            job
            for job in self.jobs
            if not job.is_finished and (now is None or job.submit_time <= now)
        ]

    def has_active_jobs(self, now: Optional[float] = None) -> bool:
        return bool(self.active_jobs(now))

    def runnable_queue(self, now: Optional[float] = None) -> List[Job]:
        """Active jobs ordered by the paper's intra-tenant policy.

        Longest starvation first; ties broken by submit time then id so the
        order is deterministic.
        """
        return sorted(
            self.active_jobs(now),
            key=lambda job: (-job.starvation_rounds, job.submit_time, job.job_id),
        )

    # -- profiles -------------------------------------------------------------
    def job_types(self, now: Optional[float] = None) -> Dict[str, List[Job]]:
        """Active jobs grouped by model family (one speedup vector each)."""
        groups: Dict[str, List[Job]] = {}
        for job in self.active_jobs(now):
            groups.setdefault(job.model_name, []).append(job)
        return groups

    def true_speedup_profile(self, now: Optional[float] = None) -> Dict[str, np.ndarray]:
        """Representative ground-truth speedup vector per job type.

        The paper's profiling agent runs one representative task per job
        type (§4.1); jobs of the same model family share the profile.
        """
        profiles: Dict[str, np.ndarray] = {}
        for model_name, jobs in self.job_types(now).items():
            profiles[model_name] = jobs[0].speedup_vector
        return profiles

    def completed_jobs(self) -> List[Job]:
        return [job for job in self.jobs if job.is_finished]

    def all_done(self, now: Optional[float] = None) -> bool:
        """True when every submitted job has finished (tenant may exit)."""
        submitted = [
            job for job in self.jobs if now is None or job.submit_time <= now
        ]
        pending_future = any(
            now is not None and job.submit_time > now for job in self.jobs
        )
        return not pending_future and all(job.is_finished for job in submitted)

    def min_worker_demand(self, now: Optional[float] = None) -> int:
        """``min_k demand_k`` used by the placer's rounding refinement (§4.3).

        Elastic jobs count with their minimum worker count — they can run
        on any grant of at least ``min_workers`` devices.
        """
        active = self.active_jobs(now)
        if not active:
            return 0
        return min(
            job.min_workers if job.elastic else job.num_workers for job in active
        )
