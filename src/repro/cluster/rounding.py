"""Deviation-accumulating rounding of fractional shares (§4.3).

The fair-share evaluator yields fractional GPU shares; a physical round
gives each job whole GPUs.  The placer therefore tracks, per tenant and
GPU type, the cumulative deviation ``dev(t)`` between the ideal fractional
share and the integral share actually granted:

    real(t) = round(ideal(t) + dev(t))
    dev(t + 1) = dev(t) + ideal(t) - real(t)

so the time-average of the granted share converges to the ideal share.
Per GPU type, rounding is capacity-aware (largest-remainder): totals never
exceed the device count.  The §4.3 refinement also zeroes a tenant's grant
when it cannot fit the tenant's smallest job (``min_k demand_k``) — the
deviation then builds up until the tenant is guaranteed a runnable grant,
which is what shrinks starvation and JCT in Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ValidationError


@dataclass
class RoundingResult:
    """Integral grants plus bookkeeping for tests and metrics."""

    grants: Dict[str, np.ndarray]
    zeroed_tenants: List[str] = field(default_factory=list)

    def total_granted(self) -> np.ndarray:
        if not self.grants:
            return np.zeros(0)
        return np.sum(list(self.grants.values()), axis=0)


class NaiveRounder:
    """Memoryless rounding baseline: independent round() per entry.

    Used by the baseline schedulers and by the rounding ablation bench.
    Without deviation accumulation, tenants whose fractional share rounds
    to zero starve indefinitely; without the min-demand rule, tenants can
    receive grants too small to run any job.
    """

    def round_shares(
        self,
        ideal: Dict[str, np.ndarray],
        capacities: Sequence[float] | np.ndarray,
        min_demands: Dict[str, int] | None = None,
        redistribute: bool = True,
    ) -> RoundingResult:
        capacities = np.asarray(capacities, dtype=float)
        tenants = list(ideal.keys())
        if not tenants:
            return RoundingResult(grants={})
        matrix = np.vstack([np.asarray(ideal[t], dtype=float) for t in tenants])
        real = np.rint(matrix).astype(int)
        real = np.clip(real, 0, None)
        # enforce capacity by shaving over-subscribed types, largest first
        for type_index in range(matrix.shape[1]):
            overflow = real[:, type_index].sum() - int(round(capacities[type_index]))
            if overflow > 0:
                order = np.argsort(-real[:, type_index])
                for row in order:
                    if overflow <= 0:
                        break
                    take = min(real[row, type_index], overflow)
                    real[row, type_index] -= take
                    overflow -= take
        grants = {tenant: real[row].astype(int) for row, tenant in enumerate(tenants)}
        return RoundingResult(grants=grants)

    def forget(self, tenant: str) -> None:
        """No state to drop; present for interface parity."""


class DeviationRounder:
    """Stateful rounder: one instance per simulation, fed every round."""

    def __init__(self) -> None:
        self._deviation: Dict[str, np.ndarray] = {}

    def deviation(self, tenant: str) -> np.ndarray:
        return self._deviation.get(tenant, np.zeros(0)).copy()

    def forget(self, tenant: str) -> None:
        """Drop state for a departed tenant."""
        self._deviation.pop(tenant, None)

    def round_shares(
        self,
        ideal: Dict[str, np.ndarray],
        capacities: Sequence[float] | np.ndarray,
        min_demands: Dict[str, int] | None = None,
        redistribute: bool = True,
    ) -> RoundingResult:
        """Convert fractional shares into per-type integer grants.

        Parameters
        ----------
        ideal:
            tenant -> fractional share vector (one entry per GPU type).
        capacities:
            device count per GPU type; granted totals never exceed it.
        min_demands:
            tenant -> smallest worker count among its jobs; grants smaller
            than this are zeroed (the tenant cannot run anything with them)
            and the deviation absorbs the difference.
        redistribute:
            hand GPUs freed by the zeroing rule to other tenants (work
            conservation), largest accumulated deviation first.
        """
        capacities = np.asarray(capacities, dtype=float)
        num_types = capacities.shape[0]
        tenants = list(ideal.keys())
        for tenant in tenants:
            vector = np.asarray(ideal[tenant], dtype=float)
            if vector.shape != (num_types,):
                raise ValidationError(
                    f"tenant {tenant!r}: share vector shape {vector.shape} "
                    f"does not match {num_types} GPU types"
                )
            if tenant not in self._deviation or self._deviation[tenant].shape != (
                num_types,
            ):
                self._deviation[tenant] = np.zeros(num_types)

        if not tenants:
            return RoundingResult(grants={})

        ideal_matrix = np.vstack([np.asarray(ideal[t], dtype=float) for t in tenants])
        deviation_matrix = np.vstack([self._deviation[t] for t in tenants])
        target = np.clip(ideal_matrix + deviation_matrix, 0.0, None)

        real = np.zeros_like(target, dtype=int)
        for type_index in range(num_types):
            real[:, type_index] = self._largest_remainder(
                target[:, type_index], int(round(capacities[type_index]))
            )

        zeroed: List[str] = []
        if min_demands:
            for row, tenant in enumerate(tenants):
                demand = int(min_demands.get(tenant, 0))
                if demand > 0 and 0 < real[row].sum() < demand:
                    real[row] = 0
                    zeroed.append(tenant)
            if redistribute and zeroed:
                self._redistribute(real, target, capacities, tenants, min_demands)

        # update deviations and package the result
        grants: Dict[str, np.ndarray] = {}
        for row, tenant in enumerate(tenants):
            grant = real[row]
            self._deviation[tenant] = (
                self._deviation[tenant] + ideal_matrix[row] - grant
            )
            grants[tenant] = grant.astype(int)
        return RoundingResult(grants=grants, zeroed_tenants=zeroed)

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def _largest_remainder(target: np.ndarray, capacity: int) -> np.ndarray:
        """Round a column to integers summing to at most ``capacity``."""
        floors = np.floor(target).astype(int)
        overflow = floors.sum() - capacity
        if overflow > 0:
            # capacity was oversubscribed by accumulated deviations: shave
            # the largest grants first
            order = np.argsort(-floors)
            for index in order:
                if overflow <= 0:
                    break
                take = min(floors[index], overflow)
                floors[index] -= take
                overflow -= take
        remaining = capacity - floors.sum()
        if remaining > 0:
            remainders = target - np.floor(target)
            order = np.argsort(-remainders)
            for index in order:
                if remaining <= 0:
                    break
                if remainders[index] <= 1e-12:
                    break  # don't grant devices nobody asked for
                floors[index] += 1
                remaining -= 1
        return floors

    def _redistribute(
        self,
        real: np.ndarray,
        target: np.ndarray,
        capacities: np.ndarray,
        tenants: List[str],
        min_demands: Dict[str, int],
    ) -> None:
        """Give devices freed by the zeroing rule to runnable tenants."""
        free = np.asarray(capacities, dtype=int) - real.sum(axis=0)
        # candidates: tenants already holding a runnable grant
        runnable_rows = [
            row
            for row, tenant in enumerate(tenants)
            if real[row].sum() >= max(1, int(min_demands.get(tenant, 0)))
        ]
        if not runnable_rows:
            return
        for type_index in range(real.shape[1]):
            while free[type_index] > 0:
                # most under-served runnable tenant on this type; when no
                # tenant is below target, still hand the device to the
                # largest-target tenant (work conservation — the deviation
                # update claws the excess back in later rounds)
                deficits = [
                    (target[row, type_index] - real[row, type_index], row)
                    for row in runnable_rows
                ]
                deficit, row = max(deficits)
                if deficit <= 1e-12:
                    candidates = [
                        (target[r, type_index], r)
                        for r in runnable_rows
                        if target[r, type_index] > 1e-12
                    ]
                    if not candidates:
                        break
                    _, row = max(candidates)
                real[row, type_index] += 1
                free[type_index] -= 1
