"""The placer: integral grants -> physical devices -> effective job rates.

Implements §4.3's placement optimisation as a configurable policy so the
evaluation can compare OEF's placer against the naive placement the
baselines use:

* **job selection** — within a tenant, jobs are served in starvation order
  (the paper's uniform intra-tenant round-robin);
* **type choice** — OEF fills a job from the fastest granted type downward
  and keeps the types it mixes *adjacent* (Theorem 5.2 guarantees the
  grant itself is adjacent); the naive policy consumes types in index
  order with no adjacency care;
* **host packing** — OEF places large jobs first and keeps each job on as
  few hosts as possible (network-contention alleviation); the naive
  policy takes free devices in id order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.gpu import GPUDevice
from repro.cluster.job import Job
from repro.cluster.network import NetworkModel
from repro.cluster.straggler import StragglerModel
from repro.cluster.tenant import Tenant
from repro.cluster.topology import ClusterTopology
from repro.exceptions import PlacementError


@dataclass(frozen=True)
class PlacementPolicy:
    """Knobs separating OEF's placer from the naive baseline placer."""

    pack_large_jobs_first: bool = True
    prefer_single_host: bool = True
    adjacent_types_only: bool = True
    prefer_fast_types: bool = True

    @staticmethod
    def oef() -> "PlacementPolicy":
        return PlacementPolicy(True, True, True, True)

    @staticmethod
    def naive() -> "PlacementPolicy":
        return PlacementPolicy(False, False, False, False)


@dataclass
class JobPlacement:
    """One job's devices and effective execution rate for a round."""

    job: Job
    devices: List[GPUDevice]
    type_counts: Dict[int, int]
    hosts_spanned: int
    per_worker_rate: float  # iterations/sec, straggler-adjusted
    straggler_workers: int
    network_factor: float = 1.0

    @property
    def iterations_per_second(self) -> float:
        return (
            self.per_worker_rate * len(self.devices) * self.network_factor
        )

    def normalised_throughput(self) -> float:
        """Delivered speed in speedup units (relative to the slowest type)."""
        reference = float(self.job.true_throughput[0])
        return self.iterations_per_second / reference


@dataclass
class RoundPlacement:
    """Everything the simulator needs to advance one round."""

    placements: List[JobPlacement] = field(default_factory=list)
    starved_jobs: List[Job] = field(default_factory=list)

    def cross_host_jobs(self) -> int:
        return sum(1 for placement in self.placements if placement.hosts_spanned > 1)

    def straggler_workers(self) -> int:
        return sum(placement.straggler_workers for placement in self.placements)

    def cross_type_jobs(self) -> int:
        return sum(1 for placement in self.placements if len(placement.type_counts) > 1)

    def tenant_throughput(self) -> Dict[str, float]:
        result: Dict[str, float] = {}
        for placement in self.placements:
            tenant = placement.job.tenant
            result[tenant] = result.get(tenant, 0.0) + placement.normalised_throughput()
        return result

    def model_throughput(self) -> Dict[Tuple[str, str], float]:
        """Delivered speedup units per (tenant, model family) — Fig. 5(b)."""
        result: Dict[Tuple[str, str], float] = {}
        for placement in self.placements:
            key = (placement.job.tenant, placement.job.model_name)
            result[key] = result.get(key, 0.0) + placement.normalised_throughput()
        return result


class Placer:
    """Maps per-tenant integral grants to devices and effective rates."""

    def __init__(
        self,
        topology: ClusterTopology,
        policy: Optional[PlacementPolicy] = None,
        straggler_model: Optional[StragglerModel] = None,
        network_model: Optional[NetworkModel] = None,
    ):
        self.topology = topology
        self.policy = policy or PlacementPolicy.oef()
        self.straggler_model = straggler_model or StragglerModel()
        self.network_model = network_model or NetworkModel()

    # -- public entry point ---------------------------------------------------
    def place_round(
        self,
        grants: Dict[str, np.ndarray],
        tenants: Dict[str, Tenant],
        now: float,
    ) -> RoundPlacement:
        """Select runnable jobs per tenant and bind them to devices."""
        self.topology.release_all()
        selections: List[Tuple[Job, Dict[int, int]]] = []
        starved: List[Job] = []

        for tenant_name, grant in grants.items():
            tenant = tenants.get(tenant_name)
            if tenant is None:
                raise PlacementError(f"grant for unknown tenant {tenant_name!r}")
            budget = np.asarray(grant, dtype=int).copy()
            # pass 1 — decide who runs, in starvation order.  Feasibility
            # depends only on the remaining device total, never on which
            # types earlier jobs took, so this fixes the starved set
            # before any type is chosen.
            budget_total = int(budget.sum())
            placed: List[Tuple[Job, int]] = []
            for job in tenant.runnable_queue(now):
                workers = job.num_workers
                if job.elastic:
                    # elastic jobs (§8) shrink to whatever remains, down to
                    # their minimum worker count
                    workers = min(job.num_workers, budget_total)
                    if workers < job.min_workers:
                        starved.append(job)
                        continue
                elif budget_total < workers:
                    starved.append(job)
                    continue
                budget_total -= workers
                placed.append((job, workers))
            # pass 2 — assign GPU types; under the OEF policy large jobs
            # pick first so a small job cannot fragment the contiguous
            # fast window a larger job needs (§4.3 adjacency)
            if self.policy.pack_large_jobs_first:
                placed.sort(key=lambda pair: (-pair[1], pair[0].job_id))
            for job, workers in placed:
                type_counts = self._select_types(workers, budget)
                if type_counts is None:  # cannot happen: totals checked above
                    raise PlacementError(
                        f"internal accounting error placing job {job.job_id}"
                    )
                for rank, count in type_counts.items():
                    budget[rank] -= count
                selections.append((job, type_counts))

        if self.policy.pack_large_jobs_first:
            selections.sort(key=lambda pair: (-pair[0].num_workers, pair[0].job_id))
        else:
            selections.sort(key=lambda pair: pair[0].job_id)

        placements: List[JobPlacement] = []
        for job, type_counts in selections:
            devices = self._bind_devices(type_counts)
            outcome = self.straggler_model.evaluate(job, type_counts)
            hosts = len({device.host_id for device in devices})
            for device in devices:
                device.assigned_job = job.job_id
            placements.append(
                JobPlacement(
                    job=job,
                    devices=devices,
                    type_counts=type_counts,
                    hosts_spanned=hosts,
                    per_worker_rate=outcome.per_worker_rate,
                    straggler_workers=outcome.straggler_workers,
                )
            )

        factors = self.network_model.round_factors(
            [placement.hosts_spanned for placement in placements]
        )
        for placement, factor in zip(placements, factors):
            placement.network_factor = factor
        return RoundPlacement(placements=placements, starved_jobs=starved)

    # -- type selection ---------------------------------------------------------
    def _select_types(
        self, workers: int, budget: np.ndarray
    ) -> Optional[Dict[int, int]]:
        """Pick GPU-type counts for one job from the tenant's budget."""
        if budget.sum() < workers:
            return None
        num_types = budget.shape[0]
        if self.policy.adjacent_types_only:
            window = self._best_adjacent_window(workers, budget)
            if window is not None:
                return window
            # no contiguous window covers the job (grant has holes after
            # redistribution); fall through to greedy rather than starve
        order = (
            range(num_types - 1, -1, -1)
            if self.policy.prefer_fast_types
            else range(num_types)
        )
        remaining = workers
        counts: Dict[int, int] = {}
        for rank in order:
            if remaining == 0:
                break
            take = min(int(budget[rank]), remaining)
            if take > 0:
                counts[rank] = take
                remaining -= take
        if remaining > 0:
            return None
        return counts

    def _best_adjacent_window(
        self, workers: int, budget: np.ndarray
    ) -> Optional[Dict[int, int]]:
        """The fastest contiguous run of types that covers the job.

        Among windows with enough budget, prefer the one whose fastest
        type is highest, then the narrowest (fewest types mixed).
        """
        num_types = budget.shape[0]
        best: Optional[Tuple[Tuple[int, int], Dict[int, int]]] = None
        for high in range(num_types - 1, -1, -1):
            if budget[high] <= 0:
                continue
            total = 0
            for low in range(high, -1, -1):
                if budget[low] <= 0 and low != high:
                    break  # window must stay contiguous over granted types
                total += int(budget[low])
                if total >= workers:
                    counts: Dict[int, int] = {}
                    remaining = workers
                    for rank in range(high, low - 1, -1):
                        take = min(int(budget[rank]), remaining)
                        if take > 0:
                            counts[rank] = take
                            remaining -= take
                    score = (high, -(high - low))
                    if best is None or score > best[0]:
                        best = (score, counts)
                    break
        return best[1] if best else None

    # -- physical binding ---------------------------------------------------------
    def _bind_devices(self, type_counts: Dict[int, int]) -> List[GPUDevice]:
        devices: List[GPUDevice] = []
        for rank, count in sorted(type_counts.items()):
            devices.extend(self._bind_type(rank, count))
        return devices

    def _bind_type(self, rank: int, count: int) -> List[GPUDevice]:
        hosts = self.topology.hosts_of_type(rank)
        free_total = sum(host.num_free for host in hosts)
        if free_total < count:
            raise PlacementError(
                f"grants exceed free devices of type rank {rank} "
                f"({count} requested, {free_total} free)"
            )
        if not self.policy.prefer_single_host:
            chosen: List[GPUDevice] = []
            for host in hosts:
                for device in host.free_devices():
                    chosen.append(device)
                    if len(chosen) == count:
                        return chosen
            return chosen
        # best-fit: the smallest single host that fits the whole request
        fitting = [host for host in hosts if host.num_free >= count]
        if fitting:
            host = min(fitting, key=lambda h: (h.num_free, h.host_id))
            return host.free_devices()[:count]
        # otherwise spread across as few hosts as possible, fullest first
        chosen = []
        for host in sorted(hosts, key=lambda h: (-h.num_free, h.host_id)):
            for device in host.free_devices():
                chosen.append(device)
                if len(chosen) == count:
                    return chosen
        return chosen
