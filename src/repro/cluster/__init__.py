"""Cluster runtime: the simulated testbed OEF and the baselines run on.

Substitutes the paper's 24-GPU physical cluster (see DESIGN.md §2): the
scheduling algorithms are the real ones; only job execution is simulated
(iterations/sec × time, with straggler and network-contention effects).
"""

from repro.cluster.gpu import GPUDevice, GPUType, Host
from repro.cluster.job import Job, JobState, make_job
from repro.cluster.metrics import CompletionRecord, MetricsCollector, RoundMetrics
from repro.cluster.network import NetworkModel
from repro.cluster.placement import (
    JobPlacement,
    Placer,
    PlacementPolicy,
    RoundPlacement,
)
from repro.cluster.profiler import ProfilingAgent
from repro.cluster.rounding import DeviationRounder, NaiveRounder, RoundingResult
from repro.cluster.schedulers import (
    ElasticOEFScheduler,
    FairShareScheduler,
    OEFScheduler,
    SchedulerDecision,
    SingleProfileScheduler,
    make_fair_share_scheduler,
)
from repro.cluster.simulator import ClusterSimulator, SimulationConfig
from repro.cluster.straggler import StragglerModel, StragglerOutcome
from repro.cluster.tenant import Tenant
from repro.cluster.topology import (
    ClusterTopology,
    HostGroupSpec,
    paper_cluster,
    scaled_cluster,
)

__all__ = [
    "ClusterSimulator",
    "ClusterTopology",
    "CompletionRecord",
    "DeviationRounder",
    "ElasticOEFScheduler",
    "FairShareScheduler",
    "GPUDevice",
    "GPUType",
    "Host",
    "HostGroupSpec",
    "Job",
    "JobPlacement",
    "JobState",
    "MetricsCollector",
    "NaiveRounder",
    "NetworkModel",
    "OEFScheduler",
    "Placer",
    "PlacementPolicy",
    "ProfilingAgent",
    "RoundMetrics",
    "RoundPlacement",
    "RoundingResult",
    "SchedulerDecision",
    "SimulationConfig",
    "SingleProfileScheduler",
    "StragglerModel",
    "StragglerOutcome",
    "Tenant",
    "make_fair_share_scheduler",
    "make_job",
    "paper_cluster",
    "scaled_cluster",
]
