"""Network contention model for cross-host distributed training (§4.3).

Collective communication (all-reduce) crosses the host network only when a
job's workers live on more than one host; its cost grows with the number
of hosts spanned and with how many *other* cross-host jobs share the
fabric.  OEF's placer packs large jobs onto single hosts to dodge exactly
this penalty — the source of the "actual" throughput gains in Fig. 7/8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import SimulationError


@dataclass(frozen=True)
class NetworkModel:
    """Multiplicative slowdown for cross-host jobs.

    ``penalty = 1 / (1 + span_cost * (hosts - 1) + share_cost * contenders)``

    * ``span_cost`` — cost per extra host a job spans (all-reduce hops);
    * ``share_cost`` — cost per other cross-host job active in the round
      (fabric sharing);
    * single-host jobs always run at factor 1.0.
    """

    span_cost: float = 0.12
    share_cost: float = 0.04
    max_penalty: float = 0.5  # factor never drops below 1 - max_penalty

    def __post_init__(self) -> None:
        if self.span_cost < 0 or self.share_cost < 0:
            raise SimulationError("network cost coefficients must be >= 0")
        if not 0.0 <= self.max_penalty < 1.0:
            raise SimulationError("max_penalty must lie in [0, 1)")

    def factor(self, hosts_spanned: int, other_cross_host_jobs: int = 0) -> float:
        """Throughput multiplier for one job in one round."""
        if hosts_spanned < 1:
            raise SimulationError("a running job spans at least one host")
        if hosts_spanned == 1:
            return 1.0
        slowdown = self.span_cost * (hosts_spanned - 1) + self.share_cost * max(
            0, other_cross_host_jobs
        )
        return max(1.0 - self.max_penalty, 1.0 / (1.0 + slowdown))

    def round_factors(self, spans: Sequence[int]) -> list:
        """Factors for all jobs of a round, accounting for shared fabric."""
        cross_jobs = sum(1 for span in spans if span > 1)
        return [
            self.factor(span, other_cross_host_jobs=cross_jobs - (1 if span > 1 else 0))
            for span in spans
        ]
