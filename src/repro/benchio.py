"""Machine-readable benchmark records (``BENCH_*.json``).

The benchmark suite and ``repro bench`` used to report timings only in
pytest/stdout output, which made the performance trajectory between PRs
unrecoverable.  This module gives both a single tiny format: one JSON
document per benchmark with mean/p50/p95 seconds per row (a row is
usually one backend or one warm/cold mode), written with
:func:`write_bench_json` and stable enough to diff across commits or
plot from CI artifacts.

Schema (``repro/bench-v1``)::

    {
      "schema": "repro/bench-v1",
      "benchmark": "warm_start",
      "created_unix": 1722300000.0,
      "run": {...},                        # environment provenance, see
                                           # run_metadata(): git SHA,
                                           # hostname, python, platform
      "meta": {...},                       # free-form context
      "rows": [
        {"name": "steady/warm", "mean": 0.02, "p50": 0.02, "p95": 0.03,
         "samples": 5, ...},               # extra keys pass through
      ]
    }

The ``run`` block is what makes records *comparable across runs* — two
``BENCH_*.json`` files can be diffed knowing whether they came from the
same commit, machine, and interpreter (groundwork for the roadmap's
persistent bench-ledger item).
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from datetime import datetime, timezone
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.benchledger.schema import validate_record

SCHEMA = "repro/bench-v1"

#: Environment variable overriding where ``BENCH_*.json`` files land.
OUTPUT_DIR_ENV = "REPRO_BENCH_DIR"

#: Records built in this process, in order — the benchmark suite's
#: conftest drains this to route every written ``BENCH_*.json`` through
#: the persistent ledger (see :mod:`repro.benchledger`).
_SESSION_RECORDS: List[Dict[str, object]] = []


def _git_sha() -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def run_metadata() -> Dict[str, object]:
    """Environment provenance stamped into every benchmark record.

    Git SHA, hostname, python version, platform string, and a UTC
    timestamp — enough to decide whether two ``BENCH_*.json`` files are
    comparable (same commit? same machine? same interpreter?).
    """
    return {
        "git_sha": _git_sha(),
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "created_iso": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def bench_stats(seconds: Sequence[float]) -> Dict[str, float]:
    """mean/p50/p95 (and the sample count) over repeated timings."""
    samples = np.asarray(list(seconds), dtype=float)
    if samples.size == 0:
        raise ValueError("bench_stats needs at least one sample")
    return {
        "mean": float(samples.mean()),
        "p50": float(np.percentile(samples, 50)),
        "p95": float(np.percentile(samples, 95)),
        "samples": int(samples.size),
    }


def bench_output_path(filename: str, directory: Optional[str] = None) -> str:
    """Where a ``BENCH_*.json`` file belongs.

    Explicit ``directory`` wins, then ``$REPRO_BENCH_DIR``, then the
    current working directory — so local runs drop records next to the
    invocation and CI redirects everything to one artifact folder.
    """
    base = directory or os.environ.get(OUTPUT_DIR_ENV) or "."
    os.makedirs(base, exist_ok=True)
    return os.path.join(base, filename)


def build_bench_record(
    benchmark: str,
    rows: List[Dict[str, object]],
    meta: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Assemble and schema-validate one ``repro/bench-v1`` document.

    Raises :class:`repro.benchledger.schema.BenchSchemaError` on a
    malformed record (row without a name, non-numeric statistic, …) —
    malformed records used to be silently accepted and only exploded
    downstream, inside a compare or a plot.
    """
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "created_unix": time.time(),
        "run": run_metadata(),
        "meta": dict(meta or {}),
        "rows": rows,
    }
    return validate_record(payload)


def write_bench_json(
    path: str,
    benchmark: str,
    rows: List[Dict[str, object]],
    meta: Optional[Mapping[str, object]] = None,
) -> str:
    """Validate and write one benchmark record; returns the path.

    Every written record is also retained in-process (see
    :func:`session_records`) so the benchmark suite's conftest can
    append the session's records to the persistent ledger in one run.
    """
    return write_record_json(path, build_bench_record(benchmark, rows, meta=meta))


def write_record_json(path: str, record: Dict[str, object]) -> str:
    """Write an already-built record (re-validated) to ``path``."""
    validate_record(record)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
    _SESSION_RECORDS.append(record)
    return path


def session_records() -> List[Dict[str, object]]:
    """Records written by this process so far (oldest first)."""
    return list(_SESSION_RECORDS)


def reset_session_records() -> None:
    _SESSION_RECORDS.clear()


__all__ = [
    "OUTPUT_DIR_ENV",
    "SCHEMA",
    "bench_output_path",
    "bench_stats",
    "build_bench_record",
    "reset_session_records",
    "run_metadata",
    "session_records",
    "write_bench_json",
    "write_record_json",
]
