"""Paper experiments: one module per table/figure (see DESIGN.md §4).

Run everything with ``python -m repro.experiments`` or individual modules
with e.g. ``python -m repro.experiments.fig8_coop_throughput``.
"""

from repro.experiments import (
    fig1_motivation,
    fig2_conflict,
    fig4_strategyproofness,
    fig5_sharing_incentive,
    fig6_envy_freeness,
    fig7_noncoop_throughput,
    fig8_coop_throughput,
    fig9_jct,
    fig10_overhead,
    scenario_comparison,
    straggler_ablation,
    table1_properties,
)
from repro.experiments.common import ExperimentResult

ALL_EXPERIMENTS = [
    ("fig1", fig1_motivation),
    ("table1", table1_properties),
    ("fig2", fig2_conflict),
    ("fig4", fig4_strategyproofness),
    ("fig5", fig5_sharing_incentive),
    ("fig6", fig6_envy_freeness),
    ("fig7", fig7_noncoop_throughput),
    ("fig8", fig8_coop_throughput),
    ("fig9", fig9_jct),
    ("straggler", straggler_ablation),
    ("fig10", fig10_overhead),
    ("scenarios", scenario_comparison),
]

# imported after ALL_EXPERIMENTS exists: the runner resolves experiment
# modules through this table (lazily, so the import is cycle-free)
from repro.experiments.runner import (  # noqa: E402
    ExperimentOutcome,
    experiment_ids,
    run_experiment,
    run_suite,
    suite_ok,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentOutcome",
    "ExperimentResult",
    "experiment_ids",
    "run_experiment",
    "run_suite",
    "suite_ok",
]
