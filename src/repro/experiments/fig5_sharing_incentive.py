"""Fig. 5: sharing incentive and multi-job-type support (§6.2.2–6.2.3).

(a) Four tenants under cooperative OEF vs Max-Min: every tenant's OEF
    throughput is at least its Max-Min (1/n partition) throughput —
    estimated from the evaluator, and again after placement ("actual",
    which adds the placer's contention-alleviation gains).
(b) User-1 submits a second job type at minute 40; the two job types then
    receive near-equal throughput, each about half of other tenants'.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    ClusterSimulator,
    SimulationConfig,
    paper_cluster,
)
from repro.experiments.common import ExperimentResult, baseline_stack, oef_stack
from repro.workloads.generator import TenantGenerator

TENANT_MODELS = {
    "user1": "vgg16",
    "user2": "resnet50",
    "user3": "transformer",
    "user4": "lstm",
}


def _population(generator: TenantGenerator, jobs_per_tenant: int):
    return [
        generator.make_tenant(
            name,
            model_name=model,
            num_jobs=jobs_per_tenant,
            duration_on_slowest=3600.0 * 24,
        )
        for name, model in TENANT_MODELS.items()
    ]


def run_panel_a(num_rounds: int = 12, jobs_per_tenant: int = 10) -> ExperimentResult:
    topology = paper_cluster()

    scheduler, placer = oef_stack(topology, "cooperative")
    oef_sim = ClusterSimulator(
        topology,
        _population(TenantGenerator(seed=11), jobs_per_tenant),
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=False),
    )
    oef_metrics = oef_sim.run()

    topology_b = paper_cluster()
    maxmin_scheduler, maxmin_placer = baseline_stack(topology_b, "max-min")
    maxmin_sim = ClusterSimulator(
        topology_b,
        _population(TenantGenerator(seed=11), jobs_per_tenant),
        maxmin_scheduler,
        placer=maxmin_placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=False),
    )
    maxmin_metrics = maxmin_sim.run()

    result = ExperimentResult("Fig. 5(a) — sharing incentive under cooperative OEF")
    for name in TENANT_MODELS:
        baseline = maxmin_metrics.mean_tenant_throughput(name, "estimated")
        estimated = oef_metrics.mean_tenant_throughput(name, "estimated")
        actual = oef_metrics.mean_tenant_throughput(name, "actual")
        result.rows.append(
            {
                "tenant": name,
                "Max-Min": baseline,
                "OEF (estimated)": estimated,
                "OEF (actual)": actual,
                "estimated / Max-Min": estimated / baseline if baseline else 0.0,
            }
        )
    result.notes.append(
        "every ratio >= 1 demonstrates sharing incentive; the largest gain "
        "goes to the highest-speedup tenant (paper: up to 1.16x estimated, "
        "1.24x actual)"
    )
    return result


def run_panel_b(
    num_rounds: int = 16, switch_round: int = 8, jobs_per_tenant: int = 10
) -> ExperimentResult:
    topology = paper_cluster()
    generator = TenantGenerator(seed=13)
    tenants = _population(generator, jobs_per_tenant)
    # user-1 submits a second job type (LSTM batch) mid-experiment
    switch_time = switch_round * 300.0
    for _ in range(jobs_per_tenant):
        tenants[0].add_job(
            generator.make_job(
                "user1",
                "lstm",
                duration_on_slowest=3600.0 * 24,
                submit_time=switch_time,
            )
        )
    scheduler, placer = oef_stack(topology, "noncooperative")
    sim = ClusterSimulator(
        topology,
        tenants,
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=False),
    )
    metrics = sim.run()

    result = ExperimentResult("Fig. 5(b) — a tenant adds a second job type")
    before = slice(0, switch_round)
    after = slice(switch_round, num_rounds)

    job1 = metrics.model_series("user1", "vgg16")
    job2 = metrics.model_series("user1", "lstm")
    others = {
        name: metrics.tenant_series(name) for name in ("user2", "user3", "user4")
    }
    result.series["user1_job1"] = job1
    result.series["user1_job2"] = job2
    for name, series in others.items():
        result.series[name] = series

    result.rows.append(
        {
            "phase": "before switch",
            "user1 job1": float(np.mean(job1[before])),
            "user1 job2": 0.0,
            "other tenants (mean)": float(
                np.mean([np.mean(series[before]) for series in others.values()])
            ),
        }
    )
    result.rows.append(
        {
            "phase": "after switch",
            "user1 job1": float(np.mean(job1[after])),
            "user1 job2": float(np.mean(job2[after])),
            "other tenants (mean)": float(
                np.mean([np.mean(series[after]) for series in others.values()])
            ),
        }
    )
    result.notes.append(
        "after the switch the two job types receive near-equal throughput, "
        "each about half of other tenants' (§4.2.4 weight splitting)"
    )
    return result


def run(num_rounds: int = 12) -> ExperimentResult:
    panel_a = run_panel_a(num_rounds=num_rounds)
    panel_b = run_panel_b(num_rounds=max(num_rounds, 8))
    combined = ExperimentResult("Fig. 5 — sharing incentive & multiple job types")
    combined.rows = panel_a.rows + panel_b.rows
    combined.notes = panel_a.notes + panel_b.notes
    combined.series = {**panel_a.series, **panel_b.series}
    return combined


def main() -> None:
    print(run_panel_a().format())
    print()
    print(run_panel_b().format())


if __name__ == "__main__":
    main()
