"""Scheduler comparison across every named dynamic scenario.

Goes beyond the paper: the original evaluation replays static job mixes,
while this experiment replays each scenario in the library (``steady``,
``bursty``, ``diurnal``, ``tenant-churn``, ``philly-replay``) under the
OEF cooperative stack and the two heterogeneity-aware baselines, all
fed the *same* seeded event stream per scenario.  Rows report completed
jobs, mean JCT, utilisation, Jain fairness, the weighted-envy proxy,
and starvation rounds — the dynamic-load counterpart of Fig. 8/9.

Run scaled down (8 rounds, small populations) so the whole grid stays a
few seconds; pass ``rounds``/``seed`` to :func:`run` for larger sweeps.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult
from repro.scenarios import ScenarioRunner, make_scenario, scenario_names

#: Registry names/aliases replayed per scenario; OEF runs its optimised
#: placer + min-demand rule, baselines the naive placer (§6.1.3).
SCHEDULERS: Sequence[str] = ("oef-coop", "gandiva-fair", "gavel")


def run(rounds: int = 8, seed: int = 0) -> ExperimentResult:
    rows = []
    for name in scenario_names():
        scenario = make_scenario(name, seed=seed, rounds=rounds)
        for scheduler in SCHEDULERS:
            result = ScenarioRunner(scenario, scheduler=scheduler).run()
            row = result.summary_row()
            row.pop("seed")
            rows.append(row)
    return ExperimentResult(
        experiment="scenario comparison (dynamic workloads, beyond the paper)",
        rows=rows,
        notes=[
            f"every scheduler replays the identical seed-{seed} event "
            "stream per scenario; differences are purely scheduling",
            "envy = worst-case weighted-throughput shortfall per round "
            "(0 = envy-free proxy holds)",
        ],
    )


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
