"""Fig. 1: the effect of GPU heterogeneity on DL training (§1, §2.2).

(a) Diverse speedups: VGG gains 1.39x from a 3090 while LSTM gains 2.15x.
(b) Under Max-Min both users get the same share of every GPU; under
    (cooperative) OEF the LSTM user is steered to the fast GPU, raising
    its throughput (paper: 1.57 -> 1.85) at no cost to the VGG user.
"""

from __future__ import annotations

import numpy as np

from repro.core import ProblemInstance, SpeedupMatrix
from repro.experiments.common import ExperimentResult
from repro.registry import create_scheduler
from repro.workloads.models import speedup_vector


def run() -> ExperimentResult:
    gpu_pair = ["rtx3070", "rtx3090"]
    vgg = speedup_vector("vgg16", gpu_pair)
    lstm = speedup_vector("lstm", gpu_pair)

    result = ExperimentResult("Fig. 1 — heterogeneity motivation")
    result.rows.append(
        {"panel": "(a)", "user": "user-1 (VGG)", "3070": 1.0, "3090": float(vgg[1])}
    )
    result.rows.append(
        {"panel": "(a)", "user": "user-2 (LSTM)", "3070": 1.0, "3090": float(lstm[1])}
    )

    matrix = SpeedupMatrix(
        np.vstack([vgg, lstm]), users=["user-1", "user-2"], gpu_types=gpu_pair
    )
    instance = ProblemInstance(matrix, [1.0, 1.0])

    maxmin = create_scheduler("max-min").allocate(instance)
    oef = create_scheduler("oef-coop").allocate(instance)
    for user in range(2):
        result.rows.append(
            {
                "panel": "(b)",
                "user": f"user-{user + 1}",
                "Max-Min": float(maxmin.user_throughput()[user]),
                "OEF": float(oef.user_throughput()[user]),
            }
        )
    gain = oef.total_efficiency() / maxmin.total_efficiency()
    result.notes.append(
        f"cluster efficiency OEF/Max-Min = {gain:.3f} "
        "(paper: Max-Min loses ~10% overall)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
