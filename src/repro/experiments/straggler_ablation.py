"""§6.3.3: straggler-effect alleviation ablation.

Counts cross-GPU-type placements and straggler-affected workers under OEF
(adjacent-type allocations, Theorem 5.2 + the placer's adjacency rule)
versus the baselines with naive placement (paper: OEF reduces straggler-
affected workers by 14% vs Gandiva_fair and 26% vs Gavel).

Multi-worker jobs are essential here — single-GPU jobs can never straggle
— so the population uses 2- and 4-worker jobs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import ClusterSimulator, SimulationConfig, paper_cluster
from repro.cluster.tenant import Tenant
from repro.experiments.common import ExperimentResult, baseline_stack, oef_stack
from repro.workloads.generator import TenantGenerator
from repro.workloads.models import all_models


def _population(num_tenants: int, seed: int) -> List[Tenant]:
    generator = TenantGenerator(seed=seed)
    models = all_models()
    tenants = []
    for index in range(num_tenants):
        tenant = Tenant(name=f"tenant{index + 1}")
        for workers in (4, 2, 2, 1):
            tenant.add_job(
                generator.make_job(
                    tenant.name,
                    models[index % len(models)],
                    num_workers=workers,
                    duration_on_slowest=3600.0 * 24,
                )
            )
        tenants.append(tenant)
    return tenants


def run(
    num_tenants: int = 8, num_rounds: int = 10, seed: int = 17
) -> ExperimentResult:
    counts: Dict[str, Dict[str, float]] = {}

    topology = paper_cluster()
    scheduler, placer = oef_stack(topology, "noncooperative")
    sim = ClusterSimulator(
        topology,
        _population(num_tenants, seed),
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=False),
    )
    metrics = sim.run()
    counts["OEF"] = {
        "straggler_workers": metrics.total_straggler_workers(),
        "cross_type_jobs": metrics.total_cross_type_jobs(),
    }

    # Baselines keep their naive placement (the variable under test is
    # placement adjacency, §4.4) but share OEF's deviation rounding: their
    # real systems also realise fractional shares over time, which is what
    # fragments a tenant's per-round holdings across GPU types.
    for baseline in ("gandiva", "gavel"):
        topology = paper_cluster()
        scheduler, placer = baseline_stack(topology, baseline)
        sim = ClusterSimulator(
            topology,
            _population(num_tenants, seed),
            scheduler,
            placer=placer,
            config=SimulationConfig(
                num_rounds=num_rounds,
                stop_when_idle=False,
                use_min_demand_rule=False,
            ),
        )
        metrics = sim.run()
        counts[baseline.capitalize()] = {
            "straggler_workers": metrics.total_straggler_workers(),
            "cross_type_jobs": metrics.total_cross_type_jobs(),
        }

    result = ExperimentResult("§6.3.3 — straggler-effect alleviation")
    for scheduler_name, values in counts.items():
        row = {"scheduler": scheduler_name}
        row.update(values)
        if scheduler_name != "OEF" and values["straggler_workers"] > 0:
            row["OEF reduction"] = (
                f"{(1 - counts['OEF']['straggler_workers'] / values['straggler_workers']) * 100:+.0f}%"
            )
        result.rows.append(row)
    result.notes.append(
        "paper: OEF reduces straggler-affected workers by 14% (vs "
        "Gandiva_fair) and 26% (vs Gavel)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
