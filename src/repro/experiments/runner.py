"""Concurrent experiment runner with per-experiment timing and a summary.

Replaces the serial loop that used to live in ``experiments/__main__``:
any subset of the fig1–fig10/table1 experiments runs through an
execution backend (:mod:`repro.parallel`), each experiment's stdout is
captured and replayed in the deterministic input order, and a pass/fail
summary table with wall-clock timings closes the run — the orchestration
shape of an audit runner: fan out independent checks, aggregate one
verdict.

Experiments are addressed by id (``"fig1"``, ``"table1"``, ...), which
is all that crosses a process boundary; each worker re-imports the
experiment module and runs its ``main()``.  Exit status is non-zero when
any experiment fails, making ``repro experiments --jobs N`` a usable CI
gate.
"""

from __future__ import annotations

import io
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Sequence, TextIO

from repro.exceptions import ValidationError
from repro.parallel import BackendSpec, get_backend


class _StdoutRouter(io.TextIOBase):
    """Routes writes to a per-thread buffer when one is active.

    ``contextlib.redirect_stdout`` swaps the single process-global
    ``sys.stdout``, so two thread-backend workers would capture each
    other's prints (and an overlapping exit order can leave a worker's
    buffer installed as ``sys.stdout`` forever).  This proxy is installed
    once while captures are active; each thread registers its own buffer
    and unrouted threads write straight through to the real stream.
    """

    def __init__(self, target):
        super().__init__()
        self.target = target
        self.active = 0
        self._local = threading.local()

    def _sink(self):
        return getattr(self._local, "buffer", None) or self.target

    def write(self, text):  # noqa: D102 - io.TextIOBase API
        return self._sink().write(text)

    def flush(self):  # noqa: D102
        self._sink().flush()

    @property
    def encoding(self):  # some libraries probe sys.stdout.encoding
        return getattr(self.target, "encoding", "utf-8")

    def bind(self, buffer) -> None:
        self._local.buffer = buffer

    def unbind(self) -> None:
        self._local.buffer = None


_ROUTER_LOCK = threading.Lock()


@contextmanager
def _capture_stdout():
    """Capture this thread's stdout into a fresh StringIO, thread-safely.

    Installs the router on first use, refcounts concurrent captures, and
    restores the original stream only when the last capture exits (and
    only if nobody else has since replaced ``sys.stdout``).
    """
    buffer = io.StringIO()
    with _ROUTER_LOCK:
        router = sys.stdout if isinstance(sys.stdout, _StdoutRouter) else None
        if router is None:
            router = _StdoutRouter(sys.stdout)
            sys.stdout = router
        router.active += 1
    router.bind(buffer)
    try:
        yield buffer
    finally:
        router.unbind()
        with _ROUTER_LOCK:
            router.active -= 1
            if router.active == 0 and sys.stdout is router:
                sys.stdout = router.target


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's verdict: captured output, timing, and any error."""

    name: str
    ok: bool
    seconds: float
    output: str
    error: str = ""

    @property
    def status(self) -> str:
        return "PASS" if self.ok else "FAIL"


def experiment_ids() -> List[str]:
    """Known experiment ids, in canonical (paper) order."""
    from repro.experiments import ALL_EXPERIMENTS

    return [name for name, _ in ALL_EXPERIMENTS]


def run_experiment(name: str) -> ExperimentOutcome:
    """Run one experiment by id, capturing stdout and timing it.

    Module-level and string-addressed so it fans out to process pools;
    an experiment that raises is reported as a failure, never as a crash
    of the whole run.
    """
    from repro.experiments import ALL_EXPERIMENTS

    modules = dict(ALL_EXPERIMENTS)
    if name not in modules:
        raise ValidationError(
            f"unknown experiment {name!r}; choose from {experiment_ids()}"
        )
    start = time.perf_counter()
    try:
        with _capture_stdout() as buffer:
            modules[name].main()
        ok, error = True, ""
    except Exception:
        ok, error = False, traceback.format_exc()
    return ExperimentOutcome(
        name=name,
        ok=ok,
        seconds=time.perf_counter() - start,
        output=buffer.getvalue(),
        error=error,
    )


def run_suite(
    ids: Optional[Sequence[str]] = None,
    *,
    backend: BackendSpec = "auto",
    jobs: Optional[int] = None,
    stream: Optional[TextIO] = None,
) -> List[ExperimentOutcome]:
    """Run a subset of experiments (default: all) through a backend.

    Streams each experiment's captured output in the given order as soon
    as it — and everything ahead of it — has finished (later experiments
    keep running in the pool meanwhile), then prints a timing/verdict
    summary.  Returns the outcomes; the caller decides the exit code
    (see :func:`suite_ok`).
    """
    stream = stream if stream is not None else sys.stdout
    known = experiment_ids()
    names = list(ids) if ids else known
    unknown = [name for name in names if name not in known]
    if unknown:
        raise ValidationError(
            f"unknown experiment ids {unknown}; choose from {known}"
        )

    resolved = get_backend(backend, jobs, task_count=len(names))
    suite_start = time.perf_counter()
    outcomes: List[ExperimentOutcome] = []
    for outcome in resolved.imap(run_experiment, names):
        print(f"\n########## {outcome.name} ##########", file=stream)
        if outcome.output:
            stream.write(outcome.output)
        if not outcome.ok:
            print(outcome.error, file=stream)
        outcomes.append(outcome)
    suite_seconds = time.perf_counter() - suite_start

    print(format_summary(outcomes, suite_seconds, resolved.name), file=stream)
    return outcomes


def format_summary(
    outcomes: Sequence[ExperimentOutcome],
    suite_seconds: float,
    backend_name: str,
) -> str:
    """The closing pass/fail table for one suite run."""
    width = max((len(outcome.name) for outcome in outcomes), default=4)
    lines = [
        "",
        f"== experiment summary ({backend_name} backend) ==",
    ]
    for outcome in outcomes:
        lines.append(
            f"  {outcome.name.ljust(width)}  {outcome.status}  "
            f"{outcome.seconds:7.2f}s"
        )
    failed = [outcome.name for outcome in outcomes if not outcome.ok]
    serial_seconds = sum(outcome.seconds for outcome in outcomes)
    lines.append(
        f"  {len(outcomes) - len(failed)}/{len(outcomes)} passed in "
        f"{suite_seconds:.2f}s wall ({serial_seconds:.2f}s of experiment time)"
    )
    if failed:
        lines.append(f"  FAILED: {', '.join(failed)}")
    return "\n".join(lines)


def suite_ok(outcomes: Sequence[ExperimentOutcome]) -> bool:
    """True when every experiment in the run passed."""
    return all(outcome.ok for outcome in outcomes)


__all__ = [
    "ExperimentOutcome",
    "experiment_ids",
    "format_summary",
    "run_experiment",
    "run_suite",
    "suite_ok",
]
