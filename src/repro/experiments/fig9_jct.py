"""Fig. 9: long-term JCT reduction on a Philly-like trace (§6.3.2).

A multi-day trace of tenants that exit once all their jobs complete.
OEF's JCT edge comes from (i) higher delivered throughput and (ii) the
deviation-accumulating rounding that keeps small tenants from starving
(paper: -17% vs Gandiva_fair, -19% vs Gavel).

The full paper-scale run (50 tenants x ~20 jobs x 3 days) is available via
parameters; the defaults are scaled down so the bench suite stays fast
while preserving the contention level.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster import ClusterSimulator, SimulationConfig, paper_cluster
from repro.experiments.common import ExperimentResult, baseline_stack, oef_stack
from repro.workloads.philly import PhillyTraceConfig, PhillyTraceGenerator


def _trace(config: PhillyTraceConfig):
    topology = paper_cluster()
    generator = PhillyTraceGenerator(
        config=config, cluster_devices=topology.num_devices
    )
    return generator.generate()


def run(
    num_tenants: int = 12,
    jobs_per_tenant_mean: float = 6.0,
    window_seconds: float = 8 * 3600.0,
    contention: float = 0.7,
    seed: int = 5,
    mode: str = "cooperative",
) -> ExperimentResult:
    trace_config = PhillyTraceConfig(
        num_tenants=num_tenants,
        jobs_per_tenant_mean=jobs_per_tenant_mean,
        window_seconds=window_seconds,
        contention=contention,
        seed=seed,
    )
    num_rounds = int(window_seconds / 300.0 * 3)  # generous completion slack

    jcts: Dict[str, float] = {}
    makespans: Dict[str, float] = {}

    topology = paper_cluster()
    scheduler, placer = oef_stack(topology, mode)
    sim = ClusterSimulator(
        topology,
        _trace(trace_config),
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=True),
    )
    metrics = sim.run()
    jcts["OEF"] = metrics.mean_jct()
    makespans["OEF"] = metrics.makespan()

    for baseline in ("gandiva", "gavel"):
        topology = paper_cluster()
        scheduler, placer = baseline_stack(topology, baseline)
        sim = ClusterSimulator(
            topology,
            _trace(trace_config),
            scheduler,
            placer=placer,
            config=SimulationConfig(
                num_rounds=num_rounds,
                stop_when_idle=True,
                use_min_demand_rule=False,
            ),
        )
        metrics = sim.run()
        jcts[baseline.capitalize()] = metrics.mean_jct()
        makespans[baseline.capitalize()] = metrics.makespan()

    result = ExperimentResult("Fig. 9 — mean JCT over a Philly-like trace")
    reference = jcts["OEF"]
    for scheduler_name, jct in jcts.items():
        result.rows.append(
            {
                "scheduler": scheduler_name,
                "mean JCT (s)": jct,
                "JCT ratio vs OEF": jct / reference if reference else 0.0,
                "makespan (s)": makespans[scheduler_name],
            }
        )
    result.notes.append(
        "paper: Gandiva_fair 1.17x and Gavel 1.19x the JCT of OEF; the "
        "advantage combines throughput gains with the starvation-free "
        "deviation rounding"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
