"""Shared helpers for the paper-experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.placement import Placer, PlacementPolicy
from repro.cluster.schedulers import make_fair_share_scheduler
from repro.cluster.topology import ClusterTopology
from repro.registry import resolve_scheduler_name


@dataclass
class ExperimentResult:
    """Printable output of one experiment: named rows plus free-form notes."""

    experiment: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"== {self.experiment} =="]
        if self.rows:
            headers: List[str] = []
            for row in self.rows:
                for key in row:
                    if key not in headers:
                        headers.append(key)
            widths = {
                header: max(
                    len(str(header)),
                    *(len(_fmt(row.get(header, ""))) for row in self.rows),
                )
                for header in headers
            }
            lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
            for row in self.rows:
                lines.append(
                    "  ".join(
                        _fmt(row.get(header, "")).ljust(widths[header])
                        for header in headers
                    )
                )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


#: Non-default constructor options the evaluation setup (§6.1.3) uses,
#: keyed by canonical registry name (aliases resolve before lookup).
#: quarter-GPU trading lots: Gandiva_fair migrates physical devices but
#: time-slices them, so trades below a fraction of a device cannot
#: execute and tenants keep mixed residual holdings.
_BASELINE_OPTIONS: Dict[str, Dict[str, object]] = {
    "gandiva-fair": {"trade_lot": 0.25},
    "gavel": {"slack": 0.01},
}


def oef_stack(topology: ClusterTopology, mode: str) -> tuple:
    """OEF's full stack: its evaluator plus its optimised placer."""
    scheduler = make_fair_share_scheduler(mode)
    placer = Placer(topology, policy=PlacementPolicy.oef())
    return scheduler, placer


def baseline_stack(topology: ClusterTopology, name: str) -> tuple:
    """A baseline evaluator paired with the naive placer (§6.1.3).

    ``name`` is any registry name or alias; the baselines have no
    placement optimisation, so they run with first-fit placement, no
    packing, and no adjacency enforcement.
    """
    canonical = resolve_scheduler_name(name)
    scheduler = make_fair_share_scheduler(
        canonical, **_BASELINE_OPTIONS.get(canonical, {})
    )
    placer = Placer(topology, policy=PlacementPolicy.naive())
    return scheduler, placer
