"""Fig. 4: strategy-proofness over time under non-cooperative OEF (§6.2.1).

Four tenants share the paper's 24-GPU cluster.  Panel (a): nobody cheats —
all four achieve near-identical normalised throughput, and when user-4
(a batch of VGG11 jobs) exits at minute 40 the remaining three still track
each other.  Panel (b): user-1 (LSTM jobs) inflates its reported speedups
— it ends up *worse off* than honest, honest users improve, and overall
throughput drops (~10% in the paper).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster import ClusterSimulator, SimulationConfig, paper_cluster
from repro.experiments.common import ExperimentResult, oef_stack
from repro.workloads.generator import TenantGenerator

TENANT_MODELS = {
    "user1": "lstm",
    "user2": "transformer",
    "user3": "resnet50",
    "user4": "vgg11",
}


def _build_simulation(
    misreport: Optional[np.ndarray],
    num_rounds: int,
    departure_round: int,
    jobs_per_tenant: int,
    seed: int = 3,
):
    topology = paper_cluster()
    generator = TenantGenerator(seed=seed)
    tenants = []
    for name, model in TENANT_MODELS.items():
        tenant = generator.make_tenant(
            name,
            model_name=model,
            num_jobs=jobs_per_tenant,
            duration_on_slowest=3600.0 * 24,
        )
        tenants.append(tenant)
    # user-4 exits at the 40-minute mark (Fig. 4 caption)
    tenants[-1].departure_time = departure_round * 300.0
    scheduler, placer = oef_stack(topology, "noncooperative")
    config = SimulationConfig(
        num_rounds=num_rounds,
        misreports={"user1": misreport} if misreport is not None else {},
        stop_when_idle=False,
    )
    return ClusterSimulator(topology, tenants, scheduler, placer=placer, config=config)


def run(
    num_rounds: int = 16,
    departure_round: int = 8,
    jobs_per_tenant: int = 10,
    cheat_factors: Optional[List[float]] = None,
) -> ExperimentResult:
    if cheat_factors is None:
        cheat_factors = [1.0, 1.25, 1.4]

    honest = _build_simulation(None, num_rounds, departure_round, jobs_per_tenant)
    honest_metrics = honest.run()
    cheating = _build_simulation(
        np.asarray(cheat_factors), num_rounds, departure_round, jobs_per_tenant
    )
    cheat_metrics = cheating.run()

    result = ExperimentResult("Fig. 4 — OEF penalises lying users")
    summary: Dict[str, Dict[str, float]] = {}
    for name in TENANT_MODELS:
        summary[name] = {
            "honest": honest_metrics.mean_tenant_throughput(name),
            "cheating": cheat_metrics.mean_tenant_throughput(name),
        }
        result.rows.append(
            {
                "tenant": name,
                "mean throughput (no one cheats)": summary[name]["honest"],
                "mean throughput (user1 cheats)": summary[name]["cheating"],
            }
        )
        result.series[f"{name}/honest"] = honest_metrics.tenant_series(name)
        result.series[f"{name}/cheating"] = cheat_metrics.tenant_series(name)

    liar_delta = summary["user1"]["cheating"] / summary["user1"]["honest"] - 1
    total_honest = honest_metrics.mean_total_actual()
    total_cheat = cheat_metrics.mean_total_actual()
    result.notes.append(
        f"cheater's own throughput changes {liar_delta * 100:+.1f}% "
        "(paper: strictly penalised)"
    )
    result.notes.append(
        f"overall throughput {total_honest:.2f} -> {total_cheat:.2f} "
        f"({(total_cheat / total_honest - 1) * 100:+.1f}%; paper: about -10%)"
    )
    result.notes.append(
        f"user4 departs at round {departure_round}; remaining users keep "
        "equal normalised progress (see series)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
