"""Fig. 7: training throughput, non-cooperative setting, 20 tenants (§6.3.1).

Estimated (evaluator-level) throughput of non-cooperative OEF is
comparable to Gandiva_fair and Gavel — the equal-throughput constraints
cost efficiency but buy strategy-proofness.  *Actual* throughput favours
OEF (~10% in the paper) thanks to its placer: host packing, contention
alleviation, and adjacent-type allocations.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster import ClusterSimulator, SimulationConfig, paper_cluster
from repro.cluster.tenant import Tenant
from repro.experiments.common import ExperimentResult, baseline_stack, oef_stack
from repro.workloads.generator import TenantGenerator
from repro.workloads.models import all_models

# Honest reproduction note (see EXPERIMENTS.md): our Gavel and
# Gandiva_fair are *idealised* LP/trading implementations, so their
# evaluator-level ("estimated") efficiency sits within a few percent of
# OEF's — the paper's own worked example (§2.4) shows the same ~2% fluid
# gap.  The paper's 20%/32% margins come from system-level realisation
# (time-sliced scheduling, rounding, placement), which is where our
# "actual" comparison reproduces the ordering.


_WORKER_CYCLE = (1, 2, 1, 4, 2)


def _population(num_tenants: int, jobs_per_tenant: int, seed: int) -> List[Tenant]:
    """Tenants with a Philly-like mix of 1/2/4-worker jobs.

    Multi-worker jobs are what make placement matter: single-GPU jobs can
    never straggle or span hosts, so an all-1-worker population would hide
    the placer's contribution (the paper's actual-vs-estimated gaps).
    """
    generator = TenantGenerator(seed=seed)
    models = all_models()
    tenants: List[Tenant] = []
    for index in range(num_tenants):
        tenant = Tenant(name=f"tenant{index + 1}")
        for job_index in range(jobs_per_tenant):
            tenant.add_job(
                generator.make_job(
                    tenant.name,
                    models[index % len(models)],
                    num_workers=_WORKER_CYCLE[job_index % len(_WORKER_CYCLE)],
                    duration_on_slowest=3600.0 * 24,
                )
            )
        tenants.append(tenant)
    return tenants


def run_setting(
    mode: str,
    num_tenants: int = 20,
    jobs_per_tenant: int = 4,
    num_rounds: int = 10,
    seed: int = 21,
) -> Dict[str, Dict[str, float]]:
    """Throughput of OEF(mode) vs both baselines on identical populations."""
    outcomes: Dict[str, Dict[str, float]] = {}

    topology = paper_cluster()
    scheduler, placer = oef_stack(topology, mode)
    sim = ClusterSimulator(
        topology,
        _population(num_tenants, jobs_per_tenant, seed),
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=num_rounds, stop_when_idle=False),
    )
    metrics = sim.run()
    outcomes["OEF"] = {
        "estimated": metrics.mean_total_estimated(),
        "actual": metrics.mean_total_actual(),
    }

    for baseline in ("gandiva", "gavel"):
        topology = paper_cluster()
        scheduler, placer = baseline_stack(topology, baseline)
        sim = ClusterSimulator(
            topology,
            _population(num_tenants, jobs_per_tenant, seed),
            scheduler,
            placer=placer,
            config=SimulationConfig(
                num_rounds=num_rounds, stop_when_idle=False,
                use_min_demand_rule=False,
            ),
        )
        metrics = sim.run()
        outcomes[baseline.capitalize()] = {
            "estimated": metrics.mean_total_estimated(),
            "actual": metrics.mean_total_actual(),
        }
    return outcomes


def tabulate(outcomes: Dict[str, Dict[str, float]], title: str) -> ExperimentResult:
    result = ExperimentResult(title)
    reference = min(values["actual"] for values in outcomes.values())
    reference_est = min(values["estimated"] for values in outcomes.values())
    for scheduler, values in outcomes.items():
        result.rows.append(
            {
                "scheduler": scheduler,
                "estimated": values["estimated"],
                "estimated (norm.)": values["estimated"] / reference_est,
                "actual": values["actual"],
                "actual (norm.)": values["actual"] / reference,
            }
        )
    return result


def run(
    num_tenants: int = 20,
    jobs_per_tenant: int = 4,
    num_rounds: int = 10,
) -> ExperimentResult:
    outcomes = run_setting(
        "noncooperative",
        num_tenants=num_tenants,
        jobs_per_tenant=jobs_per_tenant,
        num_rounds=num_rounds,
    )
    result = tabulate(outcomes, "Fig. 7 — throughput, non-cooperative setting")
    result.notes.append(
        "estimated throughput is comparable across schedulers (paper: "
        "baselines up to 1.03x); OEF leads on actual throughput via its "
        "placer (paper: 1.10x)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
