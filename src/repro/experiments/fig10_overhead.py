"""Fig. 10: solver overhead and profiling-error sensitivity (§6.4).

(a) Wall-clock time of the fair-share LP at 100–300 users and ten GPU
    types.  Cooperative OEF carries O(n^2) envy constraints and costs
    more than the O(n)-constraint non-cooperative variant; both stay far
    below the multi-minute round length (paper: < 0.3 s with ECOS).
(b) Sensitivity: the allocation is computed from an erroneous profile but
    delivers throughput according to the *true* speedups; the deviation
    between promised and delivered throughput stays small (paper: <= 3%
    at +/-20% profiling error).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.core import ProblemInstance
from repro.experiments.common import ExperimentResult
from repro.registry import create_scheduler
from repro.workloads.generator import random_instance, zoo_instance
from repro.workloads.models import all_models


def run_overhead(
    user_counts: Sequence[int] = (100, 200, 300),
    num_gpu_types: int = 10,
    seed: int = 23,
) -> ExperimentResult:
    result = ExperimentResult("Fig. 10(a) — fair-share solver overhead")
    for num_users in user_counts:
        instance = random_instance(
            num_users=num_users,
            num_gpu_types=num_gpu_types,
            seed=seed,
            devices_per_type=float(num_users),
        )
        timings: Dict[str, float] = {}
        for allocator in (
            create_scheduler("oef-noncoop"),
            create_scheduler("oef-coop"),
        ):
            start = time.perf_counter()
            allocator.allocate(instance)
            timings[allocator.name] = time.perf_counter() - start
        result.rows.append(
            {
                "users": num_users,
                "gpu types": num_gpu_types,
                "OEF (non-coop) s": timings["oef-noncoop"],
                "OEF (coop) s": timings["oef-coop"],
            }
        )
    result.notes.append(
        "cooperative OEF has O(n^2) constraints vs O(n) for non-coop, so it "
        "costs more; both are negligible against 5-minute rounds (paper: "
        "< 0.3 s at 300 users)"
    )
    return result


def _deviation_at_bias(
    instance: ProblemInstance, bias: float, mode: str, seed: int = 0
) -> float:
    """Allocation suboptimality induced by profiling error.

    Entries of every speedup vector are independently perturbed by up to
    ``|bias|`` (signed towards ``bias``); OEF allocates from the erroneous
    profile, and the result is scored in *true* speedup units against the
    allocation OEF would have produced from the true profile.  This is the
    operational meaning of Fig. 10(b): how much throughput the cluster
    loses because profiles were off.
    """
    allocator = create_scheduler(mode)  # "noncooperative"/"cooperative" aliases
    truth = instance.speedups.values
    rng = np.random.default_rng(seed)

    factors = 1.0 + rng.uniform(min(0.0, bias), max(0.0, bias), size=truth.shape)
    reported = truth * factors
    reported = np.maximum.accumulate(reported / reported[:, :1], axis=1)
    reported_matrix = instance.speedups
    for user in range(instance.num_users):
        reported_matrix = reported_matrix.with_row(user, reported[user])
    biased_instance = instance.with_speedups(reported_matrix)

    reference = allocator.allocate(instance)
    perturbed = allocator.allocate(biased_instance)
    reference_total = float(np.einsum("lj,lj->", truth, reference.matrix))
    delivered_total = float(np.einsum("lj,lj->", truth, perturbed.matrix))
    if reference_total == 0:
        return 0.0
    return abs(reference_total - delivered_total) / reference_total


def run_sensitivity(
    biases: Sequence[float] = (-0.2, -0.1, 0.0, 0.1, 0.2),
    mode: str = "noncooperative",
) -> ExperimentResult:
    instance = zoo_instance(all_models()[:6])
    result = ExperimentResult("Fig. 10(b) — robustness to profiling error")
    for bias in biases:
        deviation = _deviation_at_bias(instance, bias, mode)
        result.rows.append(
            {"error rate": f"{bias * 100:+.0f}%", "throughput deviation": deviation}
        )
    result.notes.append(
        "deviation = throughput lost (in true speedup units) by allocating "
        "from an erroneous profile instead of the true one; the paper "
        "reports <= 3% at +/-20% error."
    )
    return result


def run() -> List[ExperimentResult]:
    return [run_overhead(), run_sensitivity()]


def main() -> None:
    for result in run():
        print(result.format())
        print()


if __name__ == "__main__":
    main()
