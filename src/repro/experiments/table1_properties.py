"""Table 1: fairness properties guaranteed by each scheduler.

Audits Gavel, Gandiva_fair, and both OEF variants on the paper's §2.4
worked example (W = [[1,2],[1,3],[1,4]], one GPU of each type) plus a set
of random instances.  A property is reported as held only if it held on
*every* audited instance.

Expected outcome (paper's Table 1):

    Gavel:        PE x  EF x  SI v  SP x  opt x
    Gandiva_fair: PE v  EF x  SI v  SP x  opt x
    OEF:          PE v  EF v  SI v  SP v  opt v

where OEF's EF/SI/optimal-efficiency come from the cooperative variant
and SP from the non-cooperative one (Theorems 3.2/3.3 prove no mechanism
gets all of them at optimal efficiency simultaneously).

Audits run through :class:`~repro.service.SchedulingService.audit`, so
every honest and perturbed solve is memoized by the gateway pipeline's
cache stage — repeating a property across instances and schedulers
never re-pays for an LP it already solved.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import ProblemInstance, SpeedupMatrix
from repro.experiments.common import ExperimentResult
from repro.service import SchedulingService
from repro.workloads.generator import random_instance


def paper_example_instance() -> ProblemInstance:
    """The §2.4 running example: three users, two GPU types."""
    return ProblemInstance(SpeedupMatrix([[1, 2], [1, 3], [1, 4]]), [1.0, 1.0])


def audit_instances(num_random: int = 2, seed: int = 7) -> List[ProblemInstance]:
    instances = [paper_example_instance()]
    for index in range(num_random):
        instances.append(
            random_instance(
                num_users=4, num_gpu_types=3, seed=seed + index, devices_per_type=4.0
            )
        )
    return instances


#: Greedy trading is PE only up to small residuals on random instances
#: (exact on the paper's worked example) — an experiment judgement call,
#: so it stays here rather than in the registry metadata.
_PE_TOLERANCE = {"gandiva-fair": 0.02}


def run(num_random: int = 2, sp_trials: int = 2) -> ExperimentResult:
    # pe_within / efficiency_constraint come from each scheduler's
    # registered audit defaults (Theorem 5.3: PE within the scheduler's
    # own feasible domain)
    schedulers = ["gavel", "gandiva-fair", "oef-coop", "oef-noncoop"]
    service = SchedulingService()
    instances = audit_instances(num_random=num_random)

    result = ExperimentResult("Table 1 — properties per scheduler")
    combined_by_name: Dict[str, Dict[str, bool]] = {}
    for name in schedulers:
        combined: Dict[str, bool] = {
            "PE": True,
            "EF": True,
            "SI": True,
            "SP": True,
            "optimal efficiency": True,
        }
        for index, instance in enumerate(instances):
            report = service.audit(
                instance,
                name,
                sp_trials=sp_trials,
                seed=index,
                pe_tolerance=_PE_TOLERANCE.get(name, 1e-5),
            )
            combined["PE"] &= report.pareto_efficiency.satisfied
            combined["EF"] &= report.envy_freeness.satisfied
            combined["SI"] &= report.sharing_incentive.satisfied
            combined["SP"] &= report.strategy_proofness.satisfied
            combined["optimal efficiency"] &= report.optimal_efficiency.satisfied
        combined_by_name[name] = combined
        row: Dict[str, object] = {"scheduler": name}
        row.update({key: ("yes" if value else "no") for key, value in combined.items()})
        result.rows.append(row)

    # the paper's single "OEF" row: each property in its intended
    # environment (coop: PE/EF/SI/optimal; non-coop: PE/SP/optimal)
    coop = combined_by_name["oef-coop"]
    noncoop = combined_by_name["oef-noncoop"]
    result.rows.append(
        {
            "scheduler": "OEF (per environment)",
            "PE": "yes" if (coop["PE"] and noncoop["PE"]) else "no",
            "EF": "yes" if coop["EF"] else "no",
            "SI": "yes" if coop["SI"] else "no",
            "SP": "yes" if noncoop["SP"] else "no",
            "optimal efficiency": "yes"
            if (coop["optimal efficiency"] and noncoop["optimal efficiency"])
            else "no",
        }
    )
    result.notes.append(
        "OEF's EF/SI come from the cooperative variant and SP from the "
        "non-cooperative one — their intended environments (§3.2); "
        "Theorems 3.2/3.3 prove no mechanism provides all five at once."
    )
    result.notes.append(
        "Gavel is audited in its dense (interior-point-like) default, which "
        "reproduces the paper's Eq. (3) solution and its PE violation; "
        "Gavel(dense=False) returns work-conserving vertices that audit as "
        "PE."
    )
    result.notes.append(
        "PE for OEF is audited within each variant's feasible domain, "
        "matching Theorem 5.3's definition; Gandiva_fair PE is judged with "
        "a 2% residual band (greedy trading)."
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
