"""Fig. 2 / §3.1: conflicts between efficiency and fairness properties.

Reproduces both worked conflict examples:

* Fig. 2 — with W = [[1,2],[1,4]], the EF + optimally-efficient allocation
  gives user-2 a 0.75 share of the fast GPU; after user-1 inflates its
  speedup to <1,3> the allocation shifts to 0.67/0.33, so user-1 gained by
  lying — EF + optimal efficiency cannot be strategy-proof (Theorem 3.2).
* §3.1.1's Eq. (6) — with W = [[1,2],[1,5]], user-1 lying to <1,4> raises
  its own throughput ~17% while total efficiency drops from 5.25.
"""

from __future__ import annotations

from repro.core import ProblemInstance, SpeedupMatrix
from repro.experiments.common import ExperimentResult
from repro.registry import create_scheduler


def _coop(values) -> tuple:
    instance = ProblemInstance(SpeedupMatrix(values), [1.0, 1.0])
    allocation = create_scheduler("oef-coop").allocate(instance)
    return instance, allocation


def run() -> ExperimentResult:
    result = ExperimentResult("Fig. 2 — EF/efficiency vs strategy-proofness")

    # Theorem 3.2 illustration (Fig. 2)
    _, honest = _coop([[1, 2], [1, 4]])
    _, lied = _coop([[1, 3], [1, 4]])
    truth_row = [1.0, 2.0]
    for label, allocation in (("honest", honest), ("user-1 lies to <1,3>", lied)):
        share = allocation.matrix
        true_throughput_u1 = truth_row[0] * share[0, 0] + truth_row[1] * share[0, 1]
        result.rows.append(
            {
                "scenario": label,
                "u1 share gpu2": float(share[0, 1]),
                "u2 share gpu2": float(share[1, 1]),
                "u1 true throughput": true_throughput_u1,
            }
        )
    gain = (
        result.rows[1]["u1 true throughput"] / result.rows[0]["u1 true throughput"] - 1
    )
    result.notes.append(
        f"user-1 gains {gain * 100:.1f}% by lying (paper Fig. 2: 0.25 -> 0.33 "
        "of GPU2), so EF + optimal efficiency is not strategy-proof"
    )

    # Eq. (6) illustration
    _, honest6 = _coop([[1, 2], [1, 5]])
    _, lied6 = _coop([[1, 4], [1, 5]])
    truth6 = [1.0, 2.0]
    honest_u1 = float(truth6[0] * honest6.matrix[0, 0] + truth6[1] * honest6.matrix[0, 1])
    lied_u1 = float(truth6[0] * lied6.matrix[0, 0] + truth6[1] * lied6.matrix[0, 1])
    lied_total = float(
        (lied6.matrix[0] @ [1.0, 2.0]) + (lied6.matrix[1] @ [1.0, 5.0])
    )
    result.rows.append(
        {
            "scenario": "Eq.(6) honest total",
            "u1 share gpu2": float(honest6.matrix[0, 1]),
            "u2 share gpu2": float(honest6.matrix[1, 1]),
            "u1 true throughput": honest_u1,
        }
    )
    result.rows.append(
        {
            "scenario": "Eq.(6) u1 lies to <1,4>",
            "u1 share gpu2": float(lied6.matrix[0, 1]),
            "u2 share gpu2": float(lied6.matrix[1, 1]),
            "u1 true throughput": lied_u1,
        }
    )
    result.notes.append(
        f"Eq.(6): honest total efficiency {honest6.total_efficiency():.3f} "
        f"(paper 5.25); after the lie, u1 gains "
        f"{(lied_u1 / honest_u1 - 1) * 100:.1f}% (paper 16.7%) while true "
        f"total drops to {lied_total:.3f} (paper 4.875)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
