"""Fig. 8: training throughput, cooperative setting, 20 tenants (§6.3.1).

Cooperative OEF maximises total throughput subject only to envy-freeness,
so it beats both baselines at the evaluator level already (paper: +20%
estimated), and the placer widens the gap (paper: +32% actual).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig7_noncoop_throughput import run_setting, tabulate


def run(
    num_tenants: int = 20,
    jobs_per_tenant: int = 4,
    num_rounds: int = 10,
) -> ExperimentResult:
    outcomes = run_setting(
        "cooperative",
        num_tenants=num_tenants,
        jobs_per_tenant=jobs_per_tenant,
        num_rounds=num_rounds,
    )
    result = tabulate(outcomes, "Fig. 8 — throughput, cooperative setting")
    oef = outcomes["OEF"]
    best_baseline_est = max(
        values["estimated"] for name, values in outcomes.items() if name != "OEF"
    )
    best_baseline_act = max(
        values["actual"] for name, values in outcomes.items() if name != "OEF"
    )
    result.notes.append(
        f"OEF estimated gain over best baseline: "
        f"{(oef['estimated'] / best_baseline_est - 1) * 100:+.1f}% (paper ~+20%); "
        f"actual gain: {(oef['actual'] / best_baseline_act - 1) * 100:+.1f}% "
        "(paper ~+32%)"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
