"""Fig. 6: envy-freeness under cooperative OEF (§6.2.4).

For four tenants, evaluate each tenant's speedup vector against *every*
tenant's allocated share.  The diagonal (own share) must dominate each
row: nobody would gain by swapping allocations with anyone else.
"""

from __future__ import annotations

import numpy as np

from repro.core import check_envy_freeness
from repro.registry import create_scheduler
from repro.workloads.generator import zoo_instance
from repro.experiments.common import ExperimentResult

MODELS = ["vgg16", "resnet50", "transformer", "lstm"]


def run(models=None, capacities=None) -> ExperimentResult:
    instance = zoo_instance(models or MODELS, capacities=capacities)
    allocation = create_scheduler("oef-coop").allocate(instance)
    cross = allocation.cross_throughput()

    result = ExperimentResult("Fig. 6 — cross-evaluated throughput (cooperative OEF)")
    num_users = instance.num_users
    for row in range(num_users):
        own = cross[row, row]
        entry = {"tenant": f"user{row + 1} ({(models or MODELS)[row]})"}
        for col in range(num_users):
            # normalise like the paper: ratio of own throughput to the
            # throughput this tenant would get on user-col's share
            value = cross[row, row] / cross[row, col] if cross[row, col] > 0 else np.inf
            entry[f"vs user{col + 1}'s share"] = float(value)
        entry["own throughput"] = float(own)
        result.rows.append(entry)

    report = check_envy_freeness(allocation)
    result.notes.append(
        "all off-diagonal ratios >= 1: no tenant prefers another's share "
        f"(EF check: {'holds' if report.satisfied else 'VIOLATED'})"
    )
    return result


def main() -> None:
    print(run().format())


if __name__ == "__main__":
    main()
