"""Run paper experiments, optionally in parallel.

``python -m repro.experiments``                  run everything serially-ordered
``python -m repro.experiments fig1 table1``      run a subset
``python -m repro.experiments --jobs 4``         fan out to 4 workers
``python -m repro.experiments --backend thread`` pick the execution backend

Output order is canonical regardless of backend; the run closes with a
per-experiment pass/fail and timing summary, and the exit code is
non-zero when any experiment failed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.parallel import BACKEND_NAMES
from repro.experiments.runner import experiment_ids, run_suite, suite_ok


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="run the paper experiments (all or a subset)",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="id",
        help=f"experiment ids (default: all of {', '.join(experiment_ids())})",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="max concurrent experiments (default: one per core)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="execution backend for the fan-out (default: auto)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    outcomes = run_suite(args.ids, backend=args.backend, jobs=args.jobs)
    return 0 if suite_ok(outcomes) else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
