"""Run every paper experiment and print its table (``python -m repro.experiments``)."""

from __future__ import annotations

import sys

from repro.experiments import ALL_EXPERIMENTS


def main(selected: list) -> None:
    for name, module in ALL_EXPERIMENTS:
        if selected and name not in selected:
            continue
        print(f"\n########## {name} ##########")
        module.main()


if __name__ == "__main__":
    main(sys.argv[1:])
