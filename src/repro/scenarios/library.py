"""Named scenario library: ``steady``, ``bursty``, ``diurnal``,
``tenant-churn``, and ``philly-replay``.

Each scenario is a registered builder that expands a seeded
:class:`~repro.scenarios.scenario.Scenario` recipe into a
:class:`~repro.scenarios.scenario.ScenarioScript` (topology, initial
tenants, timed events).  All randomness flows through one
``numpy.random.default_rng(seed)`` per materialisation, so the same
name + seed always yields the same event stream.

Adding a scenario is one decorator::

    from repro.scenarios.library import register_scenario

    @register_scenario(
        "my-scenario", description="...", default_rounds=24, my_knob=3,
    )
    def build_my_scenario(scenario):
        ...
        return ScenarioScript(topology, initial_tenants, events)

and it appears in ``repro list-scenarios``, ``repro simulate
--scenario my-scenario``, and the scenario-comparison experiment
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.tenant import Tenant
from repro.cluster.topology import ClusterTopology, paper_cluster
from repro.exceptions import ValidationError, unknown_name_message
from repro.scenarios.events import (
    JobArrival,
    ScenarioEvent,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.scenario import Scenario, ScenarioScript
from repro.workloads.generator import TenantGenerator
from repro.workloads.philly import PhillyTraceConfig, PhillyTraceGenerator


@dataclass(frozen=True)
class ScenarioInfo:
    """Registry record for one named scenario."""

    name: str
    builder: object
    description: str
    default_rounds: int
    default_params: Tuple[Tuple[str, object], ...]
    #: Scenario family shown by ``repro list-scenarios``: single-cluster
    #: scenarios are ``"cluster"``; the fleet registry contributes
    #: ``"fleet"`` rows and the trace store ``"trace"`` rows.
    family: str = "cluster"

    def as_row(self) -> Dict[str, object]:
        """One printable table row for ``repro list-scenarios``."""
        return {
            "name": self.name,
            "family": self.family,
            "rounds": self.default_rounds,
            "params": ", ".join(f"{k}={v}" for k, v in self.default_params) or "-",
            "description": self.description,
        }


_SCENARIOS: Dict[str, ScenarioInfo] = {}


def register_scenario(
    name: str,
    *,
    description: str = "",
    default_rounds: int = 24,
    **default_params: object,
):
    """Function decorator: register ``builder(scenario) -> ScenarioScript``."""

    def wrap(builder):
        if name in _SCENARIOS:
            raise ValidationError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = ScenarioInfo(
            name=name,
            builder=builder,
            description=description or (builder.__doc__ or "").strip().split("\n")[0],
            default_rounds=default_rounds,
            default_params=tuple(sorted(default_params.items())),
        )
        return builder

    return wrap


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def scenario_rows() -> List[Dict[str, object]]:
    """Printable metadata rows, one per registered scenario."""
    return [_SCENARIOS[name].as_row() for name in scenario_names()]


def make_scenario(
    name: str,
    *,
    seed: int = 0,
    rounds: Optional[int] = None,
    round_duration: float = 300.0,
    **params: object,
) -> Scenario:
    """Build a seeded :class:`Scenario` recipe from a registered name.

    ``params`` override the scenario's registered shape knobs; unknown
    knobs are rejected so typos fail loudly rather than silently running
    the default shape.

    ``trace:<name>`` names resolve through the trace store
    (:mod:`repro.traces`) instead of the registry: they replay an
    ingested trace, and unknown trace names raise
    :class:`~repro.exceptions.UnknownTraceError`.
    """
    if name.startswith("trace:"):
        from repro.traces.replay import TRACE_PREFIX, trace_scenario

        return trace_scenario(
            name[len(TRACE_PREFIX):],
            seed=int(seed),
            rounds=rounds,
            round_duration=round_duration,
            **params,  # type: ignore[arg-type]
        )
    try:
        info = _SCENARIOS[name]
    except KeyError:
        raise ValidationError(
            unknown_name_message("scenario", name, _SCENARIOS)
        ) from None
    merged = dict(info.default_params)
    unknown = sorted(set(params) - set(merged))
    if unknown:
        raise ValidationError(
            f"unknown {name!r} scenario parameters {unknown}; "
            f"known: {sorted(merged)}"
        )
    merged.update(params)
    return Scenario(
        name=name,
        builder=info.builder,
        seed=int(seed),
        num_rounds=int(rounds) if rounds is not None else info.default_rounds,
        round_duration=float(round_duration),
        params=tuple(sorted(merged.items())),
        description=info.description,
    )


# -- shared building blocks ----------------------------------------------------
def _generator(scenario: Scenario, topology: ClusterTopology) -> TenantGenerator:
    """One job/tenant factory per materialisation: fresh, seeded, unique ids."""
    return TenantGenerator(gpu_types=topology.gpu_type_names, seed=scenario.seed)


def _tenant_model(tenant: Tenant) -> str:
    """The model family a single-model tenant runs (its first job's)."""
    return tenant.jobs[0].model_name


# -- the library ---------------------------------------------------------------
@register_scenario(
    "steady",
    description="static population, constant load: the no-dynamics baseline",
    default_rounds=24,
    num_tenants=4,
    jobs_per_tenant=3,
    duration_fraction=0.6,
)
def build_steady(scenario: Scenario) -> ScenarioScript:
    """Every tenant present at t=0, no arrivals or departures afterwards."""
    topology = paper_cluster()
    generator = _generator(scenario, topology)
    tenants = generator.make_population(
        int(scenario.param("num_tenants")),
        jobs_per_tenant=int(scenario.param("jobs_per_tenant")),
        duration_on_slowest=float(scenario.param("duration_fraction"))
        * scenario.horizon,
    )
    return ScenarioScript(topology, tuple(tenants), ())


@register_scenario(
    "bursty",
    description="steady base load punctuated by short demand spikes",
    default_rounds=24,
    num_tenants=3,
    jobs_per_tenant=2,
    num_bursts=3,
    burst_jobs=4,
    burst_duration_fraction=0.12,
)
def build_bursty(scenario: Scenario) -> ScenarioScript:
    """Random tenants submit bursts of short jobs at random instants."""
    topology = paper_cluster()
    generator = _generator(scenario, topology)
    rng = np.random.default_rng(scenario.seed)
    tenants = generator.make_population(
        int(scenario.param("num_tenants")),
        jobs_per_tenant=int(scenario.param("jobs_per_tenant")),
        duration_on_slowest=0.5 * scenario.horizon,
    )
    # clamp to the last round start so every burst fires at any --rounds
    burst_times = np.sort(
        rng.uniform(
            0.1 * scenario.horizon,
            0.8 * scenario.horizon,
            size=int(scenario.param("num_bursts")),
        )
    ).clip(max=scenario.last_round_start)
    events: List[ScenarioEvent] = []
    for burst_time in burst_times:
        for _ in range(int(scenario.param("burst_jobs"))):
            tenant = tenants[int(rng.integers(len(tenants)))]
            events.append(
                JobArrival(
                    time=float(burst_time),
                    tenant_name=tenant.name,
                    job=generator.make_job(
                        tenant.name,
                        _tenant_model(tenant),
                        duration_on_slowest=float(
                            scenario.param("burst_duration_fraction")
                        )
                        * scenario.horizon,
                        submit_time=float(burst_time),
                    ),
                )
            )
    return ScenarioScript(topology, tuple(tenants), tuple(events))


@register_scenario(
    "diurnal",
    description="sinusoidal day/night arrival intensity over the horizon",
    default_rounds=24,
    num_tenants=4,
    base_rate=0.6,
    amplitude=1.0,
    periods=2.0,
    job_duration_fraction=0.15,
    initial_duration_fraction=0.4,
)
def build_diurnal(scenario: Scenario) -> ScenarioScript:
    """Per-round Poisson job arrivals whose rate follows a sine wave."""
    topology = paper_cluster()
    generator = _generator(scenario, topology)
    rng = np.random.default_rng(scenario.seed)
    tenants = generator.make_population(
        int(scenario.param("num_tenants")),
        jobs_per_tenant=1,
        duration_on_slowest=float(scenario.param("initial_duration_fraction"))
        * scenario.horizon,
    )
    base = float(scenario.param("base_rate"))
    amplitude = float(scenario.param("amplitude"))
    periods = float(scenario.param("periods"))
    events: List[ScenarioEvent] = []
    for round_index in range(1, scenario.num_rounds):
        phase = 2.0 * np.pi * periods * round_index / scenario.num_rounds
        rate = max(0.0, base * (1.0 + amplitude * np.sin(phase)))
        arrivals = int(rng.poisson(rate))
        now = round_index * scenario.round_duration
        for _ in range(arrivals):
            tenant = tenants[int(rng.integers(len(tenants)))]
            events.append(
                JobArrival(
                    time=now,
                    tenant_name=tenant.name,
                    job=generator.make_job(
                        tenant.name,
                        _tenant_model(tenant),
                        duration_on_slowest=float(
                            scenario.param("job_duration_fraction")
                        )
                        * scenario.horizon,
                        submit_time=now,
                    ),
                )
            )
    return ScenarioScript(topology, tuple(tenants), tuple(events))


@register_scenario(
    "tenant-churn",
    description="tenants keep arriving and departing throughout the run",
    default_rounds=24,
    resident_tenants=2,
    churn_tenants=4,
    jobs_per_tenant=2,
    lifetime_fraction=0.35,
)
def build_tenant_churn(scenario: Scenario) -> ScenarioScript:
    """Resident base load plus a rotating cast of short-lived tenants."""
    topology = paper_cluster()
    generator = _generator(scenario, topology)
    rng = np.random.default_rng(scenario.seed)
    jobs_per_tenant = int(scenario.param("jobs_per_tenant"))
    residents = generator.make_population(
        int(scenario.param("resident_tenants")),
        jobs_per_tenant=jobs_per_tenant,
        duration_on_slowest=0.7 * scenario.horizon,
    )
    churn_count = int(scenario.param("churn_tenants"))
    lifetime = float(scenario.param("lifetime_fraction")) * scenario.horizon
    arrivals = np.sort(
        rng.uniform(0.05 * scenario.horizon, 0.6 * scenario.horizon, churn_count)
    )
    events: List[ScenarioEvent] = []
    for index, arrival in enumerate(arrivals):
        # clamp both ends to the last round start so the full
        # arrive-then-depart cycle stays observable at any --rounds
        arrival = min(float(arrival), scenario.last_round_start)
        name = f"churn{index + 1}"
        tenant = generator.make_tenant(
            name,
            num_jobs=jobs_per_tenant,
            duration_on_slowest=0.4 * scenario.horizon,
            submit_time=arrival,
        )
        events.append(TenantArrival(time=arrival, tenant=tenant))
        events.append(
            TenantDeparture(
                time=min(arrival + lifetime, scenario.last_round_start),
                tenant_name=name,
            )
        )
    events.sort(key=lambda event: event.time)
    return ScenarioScript(topology, tuple(residents), tuple(events))


@register_scenario(
    "philly-replay",
    description="replay a Philly-shaped synthetic trace through the event queue",
    default_rounds=24,
    num_tenants=8,
    jobs_per_tenant_mean=3.0,
    contention=0.8,
    duration_sigma=1.0,
)
def build_philly_replay(scenario: Scenario) -> ScenarioScript:
    """Heavy-tailed durations, mostly 1-GPU jobs, Poisson tenant arrivals.

    Reuses :class:`~repro.workloads.philly.PhillyTraceGenerator` with the
    trace window pinned to the scenario horizon; tenants arriving after
    t=0 enter through :class:`~repro.scenarios.events.TenantArrival`
    events rather than pre-seeded arrival times, so the replay exercises
    the same dynamic-admission path every other scenario uses.
    """
    topology = paper_cluster()
    config = PhillyTraceConfig(
        num_tenants=int(scenario.param("num_tenants")),
        jobs_per_tenant_mean=float(scenario.param("jobs_per_tenant_mean")),
        window_seconds=scenario.horizon,
        duration_median_seconds=scenario.horizon / 8.0,
        duration_sigma=float(scenario.param("duration_sigma")),
        contention=float(scenario.param("contention")),
        seed=scenario.seed,
    )
    trace = PhillyTraceGenerator(
        config=config, cluster_devices=topology.num_devices
    ).generate()
    initial: List[Tenant] = []
    events: List[ScenarioEvent] = []
    for tenant in trace:
        if tenant.arrival_time <= 0.0:
            initial.append(tenant)
        else:
            # clamp admission to the last round start (the jobs still
            # honour their own submit times) so no arrival is lost at
            # tiny --rounds settings
            events.append(
                TenantArrival(
                    time=min(tenant.arrival_time, scenario.last_round_start),
                    tenant=tenant,
                )
            )
    events.sort(key=lambda event: event.time)
    return ScenarioScript(topology, tuple(initial), tuple(events))


__all__ = [
    "ScenarioInfo",
    "make_scenario",
    "register_scenario",
    "scenario_names",
    "scenario_rows",
]
