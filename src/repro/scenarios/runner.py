"""ScenarioRunner: drive one scenario through the cluster simulator.

The runner materialises a :class:`~repro.scenarios.scenario.Scenario`
recipe, builds a :class:`~repro.cluster.simulator.ClusterSimulator`
with the scenario's event stream attached, runs it, and distils the raw
:class:`~repro.cluster.metrics.MetricsCollector` into a
:class:`ScenarioResult`: per-round records (throughput, utilisation,
Jain fairness, an envy proxy, starvation) plus the aggregate summary row
the CLI, the scenario-comparison experiment, and
``experiments/report.py`` consume.

Scheduler/placement pairing follows the paper's evaluation setup
(§6.1.3): OEF evaluators run with the optimised placer and the
min-demand rounding rule; baselines run with the naive placer and plain
deviation rounding.  That keeps ``ScenarioRunner(scenario, s).run()``
an apples-to-apples replay of the same event stream under scheduler
``s``.

Multi-seed sweeps ride the PR 2 parallel backends unchanged:
:func:`scenario_sweep` hands :meth:`ClusterSimulator.run_sweep` a
picklable runner factory, so ``backend="process"`` fans whole scenario
replays out across cores and the per-seed results come back in seed
order.  Determinism contract: for a fixed (scenario, seed, scheduler),
the summary row is identical on every backend.

Warm-started replay (``warm=True``, the default) threads each round's
solution into the next through the simulator's decision *gateway* — a
two-stage :class:`repro.gateway.Gateway` pipeline whose cache stage
memoizes decisions by the scheduler's own content key (see
:mod:`repro.cluster.simulator`) — cutting repeat-round LP cost to zero
while staying **bit-identical** to a cold replay — compare
:meth:`ScenarioResult.fingerprint` across ``warm``/``cold`` runs or
execution backends to check.  ``warm=False`` (CLI: ``--cold``) forces
every round to solve from scratch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.cluster.metrics import MetricsCollector, RoundMetrics
from repro.cluster.placement import Placer, PlacementPolicy
from repro.cluster.schedulers import make_fair_share_scheduler
from repro.cluster.simulator import ClusterSimulator
from repro.core.analysis import jain_index
from repro.exceptions import ValidationError
from repro.parallel import BackendSpec
from repro.registry import REGISTRY
from repro.scenarios.library import make_scenario
from repro.scenarios.scenario import Scenario, ScenarioScript


@dataclass(frozen=True)
class ScenarioRoundRecord:
    """One round's distilled scenario metrics."""

    round_index: int
    time: float
    active_tenants: int
    total_throughput: float
    #: Devices granted this round / devices in the cluster at t=0.
    utilization: float
    #: Jain's fairness index over active tenants' delivered throughput.
    jain: float
    #: Worst-case weighted-throughput shortfall in [0, 1]:
    #: ``(max_i T_i/w_i - min_i T_i/w_i) / max_i T_i/w_i`` over active
    #: tenants.  0 = perfectly envy-free in the weighted sense; 1 = some
    #: active tenant got nothing while another ran.
    envy: float
    starved_jobs: int


@dataclass
class ScenarioAggregates:
    """Running aggregate stats, maintained one round at a time.

    This is the O(1)-memory companion of the per-round record list: the
    runner feeds it every distilled record as it happens, so summary
    rows stay available even when ``record_rounds=False`` drops the
    records themselves.  Means are over *active* rounds (rounds with at
    least one scheduled tenant), matching the historical record-based
    aggregation.
    """

    rounds: int = 0
    active_rounds: int = 0
    utilization_sum: float = 0.0
    jain_sum: float = 0.0
    envy_sum: float = 0.0
    throughput_sum: float = 0.0
    starved_jobs: int = 0

    def observe(self, record: "ScenarioRoundRecord") -> None:
        self.rounds += 1
        self.starved_jobs += record.starved_jobs
        if record.active_tenants:
            self.active_rounds += 1
            self.utilization_sum += record.utilization
            self.jain_sum += record.jain
            self.envy_sum += record.envy
            self.throughput_sum += record.total_throughput

    @property
    def mean_utilization(self) -> float:
        return (
            self.utilization_sum / self.active_rounds
            if self.active_rounds
            else 0.0
        )

    @property
    def mean_jain(self) -> float:
        return (
            self.jain_sum / self.active_rounds if self.active_rounds else 1.0
        )

    @property
    def mean_envy(self) -> float:
        return (
            self.envy_sum / self.active_rounds if self.active_rounds else 0.0
        )

    @property
    def mean_throughput(self) -> float:
        return (
            self.throughput_sum / self.active_rounds
            if self.active_rounds
            else 0.0
        )


class _FingerprintStream:
    """Incremental SHA-256 over one replay's scheduling outcomes.

    Byte order is per-round interleaved — (distilled record, scheduler
    estimates, delivered actuals) as each round lands — then every
    completion, then the run header.  The header goes *last* because
    its round/event counts are only known once the run ends; the order
    is fixed and deterministic, which is all the fingerprint contract
    needs (fingerprints are compared between runs, never parsed).
    """

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def observe_round(
        self, record: "ScenarioRoundRecord", round_metrics: RoundMetrics
    ) -> None:
        self._digest.update(
            repr(
                (
                    record.round_index,
                    record.time,
                    record.active_tenants,
                    record.total_throughput,
                    record.utilization,
                    record.jain,
                    record.envy,
                    record.starved_jobs,
                )
            ).encode()
        )
        self._digest.update(repr(sorted(round_metrics.estimated.items())).encode())
        self._digest.update(repr(sorted(round_metrics.actual.items())).encode())

    def finalize(self, completions, header: tuple) -> str:
        for completion in completions:
            self._digest.update(
                repr(
                    (
                        completion.job_id,
                        completion.tenant,
                        completion.model_name,
                        completion.submit_time,
                        completion.finish_time,
                    )
                ).encode()
            )
        self._digest.update(repr(header).encode())
        return self._digest.hexdigest()


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, aggregates included."""

    scenario_name: str
    scheduler: str
    seed: int
    num_rounds: int
    num_events: int
    metrics: MetricsCollector
    records: List[ScenarioRoundRecord] = field(default_factory=list)
    #: Warm-start engine split for this run (0/0 under ``warm=False``
    #: never-cached schedulers).  Excluded from :meth:`summary_row` and
    #: :meth:`fingerprint` so warm and cold replays stay comparable.
    warm_hits: int = 0
    cold_solves: int = 0
    #: Running aggregates maintained during the replay; the summary
    #: properties read these, so they survive ``record_rounds=False``.
    aggregates: Optional[ScenarioAggregates] = None
    #: Fingerprint precomputed incrementally during the run (sink mode
    #: has nothing to recompute it from).  ``None`` on hand-built
    #: results; :meth:`fingerprint` then derives it from the stored
    #: records and metrics.
    digest: Optional[str] = None

    # -- aggregates -----------------------------------------------------------
    @property
    def completed_jobs(self) -> int:
        return len(self.metrics.completions)

    @property
    def mean_jct(self) -> float:
        return self.metrics.mean_jct()

    @property
    def makespan(self) -> float:
        return self.metrics.makespan()

    @property
    def mean_utilization(self) -> float:
        if self.aggregates is not None:
            return self.aggregates.mean_utilization
        values = [r.utilization for r in self.records if r.active_tenants]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_jain(self) -> float:
        if self.aggregates is not None:
            return self.aggregates.mean_jain
        values = [r.jain for r in self.records if r.active_tenants]
        return float(np.mean(values)) if values else 1.0

    @property
    def mean_envy(self) -> float:
        if self.aggregates is not None:
            return self.aggregates.mean_envy
        values = [r.envy for r in self.records if r.active_tenants]
        return float(np.mean(values)) if values else 0.0

    @property
    def total_starvation(self) -> int:
        if self.aggregates is not None:
            return self.aggregates.starved_jobs
        return sum(r.starved_jobs for r in self.records)

    def fingerprint(self) -> str:
        """SHA-256 over every scheduling outcome: the differential probe.

        Covers each round's distilled record, the scheduler's own
        per-round throughput estimates, the delivered actuals, and every
        completion — at full float precision (``repr``), so two runs
        share a fingerprint only when their decisions were
        *bit-identical*.  Wall-clock artefacts (``solver_seconds``) and
        warm-start telemetry are excluded.

        The contract: for a fixed (scenario, seed, scheduler), the
        fingerprint is identical across warm/cold replays,
        serial/thread/process sweeps, **and** record-keeping modes — a
        ``record_rounds=False`` streaming run hashes each round as it
        happens and must agree with a record-keeping replay of the same
        recipe.  Fingerprints are only ever *compared* between runs,
        never parsed or pinned as constants.
        """
        if self.digest is not None:
            return self.digest
        stream = _FingerprintStream()
        for record, round_metrics in zip(self.records, self.metrics.rounds):
            stream.observe_round(record, round_metrics)
        return stream.finalize(
            self.metrics.completions,
            (
                self.scenario_name,
                self.scheduler,
                self.seed,
                self.num_rounds,
                self.num_events,
            ),
        )

    def summary_row(self) -> Dict[str, object]:
        """One comparison-table row; also the determinism probe for sweeps."""
        return {
            "scenario": self.scenario_name,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "rounds": self.num_rounds,
            "events": self.num_events,
            "jobs done": self.completed_jobs,
            "mean JCT (h)": self.mean_jct / 3600.0,
            "utilization": self.mean_utilization,
            "jain": self.mean_jain,
            "envy": self.mean_envy,
            "starvation": self.total_starvation,
        }

    def to_experiment_result(self):
        """This run as an :class:`~repro.experiments.common.ExperimentResult`.

        Lazily imported so ``repro.scenarios`` never drags the whole
        experiments package (which itself imports scenarios for the
        comparison experiment) into its import graph.  Sink-mode runs
        (``record_rounds=False``) keep the summary row but their series
        are empty — the per-round data went to the sink.
        """
        from repro.experiments.common import ExperimentResult

        return ExperimentResult(
            experiment=f"scenario {self.scenario_name} / {self.scheduler}",
            rows=[self.summary_row()],
            series={
                "total_throughput": [
                    r.total_throughput for r in self.records
                ],
                "utilization": [r.utilization for r in self.records],
                "jain": [r.jain for r in self.records],
            },
        )


def _weighted_envy(throughputs: Sequence[float], weights: Sequence[float]) -> float:
    """Normalised spread of weighted throughput: 0 = envy-free proxy holds."""
    weighted = [t / w for t, w in zip(throughputs, weights)]
    top = max(weighted, default=0.0)
    if top <= 0.0:
        return 0.0
    return (top - min(weighted)) / top


def distill_round(
    round_metrics: RoundMetrics,
    weights: Dict[str, float],
    total_devices: int,
) -> ScenarioRoundRecord:
    """One raw :class:`RoundMetrics` → one distilled scenario record."""
    active = sorted(round_metrics.estimated)
    throughputs = [
        float(round_metrics.actual.get(name, 0.0)) for name in active
    ]
    return ScenarioRoundRecord(
        round_index=round_metrics.round_index,
        time=round_metrics.time,
        active_tenants=len(active),
        total_throughput=float(sum(throughputs)),
        utilization=(
            round_metrics.devices_used / total_devices if total_devices else 0.0
        ),
        jain=jain_index(throughputs) if active else 1.0,
        envy=_weighted_envy(
            throughputs, [weights.get(name, 1.0) for name in active]
        ),
        starved_jobs=round_metrics.starved_jobs,
    )


class ScenarioRunner:
    """Replays one scenario recipe under one scheduler.

    ``scheduler`` is any registry name or alias (``"oef-coop"``,
    ``"cooperative"``, ``"gavel"``, ...) or an elastic mode name
    understood by
    :func:`~repro.cluster.schedulers.make_fair_share_scheduler`.  Every
    ``run()`` call re-materialises the recipe, so one runner can be run
    repeatedly — and two runners replaying the same recipe under
    different schedulers see byte-identical event streams.
    """

    def __init__(
        self,
        scenario: Union[Scenario, str],
        scheduler: str = "oef-coop",
        *,
        scheduler_options: Optional[Dict[str, object]] = None,
        config_overrides: Optional[Dict[str, object]] = None,
        warm: bool = True,
        record_rounds: bool = True,
        round_sink: Optional[Callable[[ScenarioRoundRecord], None]] = None,
    ):
        if isinstance(scenario, str):
            scenario = make_scenario(scenario)
        self.scenario = scenario
        self.scheduler = scheduler
        self.scheduler_options = dict(scheduler_options or {})
        self.config_overrides = dict(config_overrides or {})
        self.warm = bool(warm)
        #: ``False`` = sink mode: per-round records are distilled,
        #: streamed to ``round_sink`` (if any) and then dropped, so a
        #: long replay's memory is O(1) in rounds while summary rows and
        #: the fingerprint stay available (see
        #: :meth:`ScenarioResult.fingerprint` for the contract).
        self.record_rounds = bool(record_rounds)
        #: Optional callable fed every distilled
        #: :class:`ScenarioRoundRecord` as it happens (any record mode);
        #: if it has a ``close()`` method the runner calls it after the
        #: replay, so buffering sinks can flush.
        self.round_sink = round_sink

    # -- construction ---------------------------------------------------------
    def _is_oef(self) -> bool:
        """OEF stacks get the optimised placer + min-demand rule (§6.1.3)."""
        name = self.scheduler
        if name in REGISTRY:
            name = REGISTRY.resolve(name)
        return name.startswith("oef") or name in ("cooperative", "noncooperative")

    def build_simulator(
        self,
        script: Optional[ScenarioScript] = None,
        metrics: Optional[MetricsCollector] = None,
    ) -> ClusterSimulator:
        """A fresh, event-loaded simulator for one replay of the recipe."""
        script = script if script is not None else self.scenario.materialize()
        oef = self._is_oef()
        scheduler = make_fair_share_scheduler(
            self.scheduler, **self.scheduler_options
        )
        placer = Placer(
            script.topology,
            policy=PlacementPolicy.oef() if oef else PlacementPolicy.naive(),
        )
        overrides = {
            "use_min_demand_rule": oef,
            "warm_start": self.warm,
            **self.config_overrides,
        }
        return ClusterSimulator(
            script.topology,
            list(script.initial_tenants),
            scheduler,
            placer=placer,
            config=self.scenario.simulation_config(overrides),
            events=script.events,
            metrics=metrics,
        )

    # -- execution ------------------------------------------------------------
    def run(self, script: Optional[ScenarioScript] = None) -> ScenarioResult:
        script = script if script is not None else self.scenario.materialize()
        weights = {t.name: t.weight for t in script.initial_tenants}
        for event in script.events:
            tenant = getattr(event, "tenant", None)
            if tenant is not None:
                weights[tenant.name] = tenant.weight
        total_devices = script.topology.num_devices

        records: List[ScenarioRoundRecord] = []
        aggregates = ScenarioAggregates()
        stream = _FingerprintStream()

        def observe(round_metrics: RoundMetrics) -> None:
            record = distill_round(round_metrics, weights, total_devices)
            stream.observe_round(record, round_metrics)
            aggregates.observe(record)
            if self.record_rounds:
                records.append(record)
            if self.round_sink is not None:
                self.round_sink(record)

        metrics = MetricsCollector(
            on_round=observe, keep_rounds=self.record_rounds
        )
        simulator = self.build_simulator(script, metrics=metrics)
        simulator.run()
        # the run is over: drop the (unpicklable) local observer so the
        # collector travels back from process-backend workers cleanly
        metrics.on_round = None
        close = getattr(self.round_sink, "close", None)
        if close is not None:
            close()
        header = (
            self.scenario.name,
            self.scheduler,
            self.scenario.seed,
            metrics.rounds_recorded,
            simulator.events_applied,
        )
        return ScenarioResult(
            scenario_name=self.scenario.name,
            scheduler=self.scheduler,
            seed=self.scenario.seed,
            num_rounds=metrics.rounds_recorded,
            num_events=simulator.events_applied,
            metrics=metrics,
            records=records,
            warm_hits=simulator.warm_stats.warm_hits,
            cold_solves=simulator.warm_stats.cold_solves,
            aggregates=aggregates,
            digest=stream.finalize(metrics.completions, header),
        )


def run_scenario(
    name: str,
    *,
    scheduler: str = "oef-coop",
    seed: int = 0,
    rounds: Optional[int] = None,
    round_duration: float = 300.0,
    warm: bool = True,
    **params: object,
) -> ScenarioResult:
    """One-shot convenience: build the recipe, replay it, return the result."""
    scenario = make_scenario(
        name, seed=seed, rounds=rounds, round_duration=round_duration, **params
    )
    return ScenarioRunner(scenario, scheduler=scheduler, warm=warm).run()


def _sweep_runner_factory(
    seed: int, *, scenario: Scenario, scheduler: str, warm: bool = True
) -> ScenarioRunner:
    """Module-level (hence picklable) ``factory(seed)`` for scenario sweeps."""
    return ScenarioRunner(scenario.with_seed(seed), scheduler=scheduler, warm=warm)


def scenario_sweep(
    scenario: Union[Scenario, str],
    seeds: Sequence[int],
    *,
    scheduler: str = "oef-coop",
    backend: BackendSpec = "auto",
    max_workers: Optional[int] = None,
    warm: bool = True,
) -> List[ScenarioResult]:
    """Replay one scenario under many seeds, fanned out across workers.

    Rides :meth:`ClusterSimulator.run_sweep`, so ``backend`` accepts the
    usual ``"serial"`` / ``"thread"`` / ``"process"`` / ``"auto"`` names
    (or an :class:`~repro.parallel.ExecutionBackend` instance).  Results
    arrive in seed order and are backend-independent: aggregate metrics
    from a serial sweep match a thread or process sweep bit for bit.
    """
    if not seeds:
        raise ValidationError("scenario_sweep needs at least one seed")
    if isinstance(scenario, str):
        scenario = make_scenario(scenario)
    factory = partial(
        _sweep_runner_factory, scenario=scenario, scheduler=scheduler, warm=warm
    )
    return ClusterSimulator.run_sweep(
        factory, list(seeds), backend=backend, max_workers=max_workers
    )


def sweep_summary(results: Sequence[ScenarioResult]) -> Dict[str, object]:
    """Aggregate one sweep: per-seed means reduced to a single row."""
    if not results:
        raise ValidationError("no results to summarise")
    return {
        "scenario": results[0].scenario_name,
        "scheduler": results[0].scheduler,
        "seeds": len(results),
        "mean jobs done": float(np.mean([r.completed_jobs for r in results])),
        "mean JCT (h)": float(np.mean([r.mean_jct for r in results])) / 3600.0,
        "mean utilization": float(
            np.mean([r.mean_utilization for r in results])
        ),
        "mean jain": float(np.mean([r.mean_jain for r in results])),
        "mean envy": float(np.mean([r.mean_envy for r in results])),
    }


__all__ = [
    "ScenarioAggregates",
    "ScenarioResult",
    "ScenarioRoundRecord",
    "ScenarioRunner",
    "distill_round",
    "run_scenario",
    "scenario_sweep",
    "sweep_summary",
]
