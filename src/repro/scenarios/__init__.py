"""Dynamic workload scenarios: event-driven load for the cluster simulator.

The paper's experiments replay *static* job mixes; this package makes
the simulator's input a first-class, reproducible *timeline*:

* :mod:`repro.scenarios.events` — the timed-event vocabulary (tenant
  arrival/departure, job bursts, device failure/repair);
* :mod:`repro.scenarios.scenario` — the :class:`Scenario` recipe and the
  :class:`ScenarioScript` it materialises into;
* :mod:`repro.scenarios.library` — named, seeded scenario builders
  (``steady``, ``bursty``, ``diurnal``, ``tenant-churn``,
  ``philly-replay``) behind :func:`make_scenario`;
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` /
  :class:`ScenarioResult` plus :func:`scenario_sweep`, which fans
  multi-seed replays out through :mod:`repro.parallel` backends.

Quick start::

    from repro.scenarios import ScenarioRunner, make_scenario

    scenario = make_scenario("bursty", seed=7, rounds=12)
    result = ScenarioRunner(scenario, scheduler="oef-coop").run()
    print(result.summary_row())

or from the command line: ``repro simulate --scenario bursty --rounds 12``.
"""

from repro.scenarios.events import (
    DeviceFailure,
    DeviceRepair,
    JobArrival,
    ScenarioEvent,
    TenantArrival,
    TenantDeparture,
)
from repro.scenarios.library import (
    ScenarioInfo,
    make_scenario,
    register_scenario,
    scenario_names,
    scenario_rows,
)
from repro.scenarios.runner import (
    ScenarioResult,
    ScenarioRoundRecord,
    ScenarioRunner,
    run_scenario,
    scenario_sweep,
    sweep_summary,
)
from repro.scenarios.scenario import Scenario, ScenarioScript

__all__ = [
    "DeviceFailure",
    "DeviceRepair",
    "JobArrival",
    "Scenario",
    "ScenarioEvent",
    "ScenarioInfo",
    "ScenarioResult",
    "ScenarioRoundRecord",
    "ScenarioRunner",
    "ScenarioScript",
    "TenantArrival",
    "TenantDeparture",
    "make_scenario",
    "register_scenario",
    "run_scenario",
    "scenario_names",
    "scenario_rows",
    "scenario_sweep",
    "sweep_summary",
]
