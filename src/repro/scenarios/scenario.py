"""The :class:`Scenario` abstraction: a reproducible dynamic-workload spec.

A scenario is a *recipe*, not a materialised population: it carries the
generator parameters (name, seed, horizon, shape knobs) plus a
module-level builder callable, and :meth:`Scenario.materialize` expands
it into a :class:`ScenarioScript` — fresh topology, fresh initial
tenants, and a fresh timed event stream.  Recipes are frozen and
picklable, so multi-seed scenario sweeps ship them straight through the
process backend; scripts are built once per run, so two runs of the same
scenario never share mutable job state.

Determinism contract: ``materialize()`` is a pure function of the recipe
— same name + seed + params ⇒ byte-identical event streams (compare with
:meth:`ScenarioScript.fingerprint`) and, for a fixed scheduler,
identical metrics regardless of the execution backend that fanned the
runs out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.cluster.simulator import SimulationConfig
from repro.cluster.tenant import Tenant
from repro.cluster.topology import ClusterTopology
from repro.exceptions import ValidationError
from repro.scenarios.events import ScenarioEvent, _tenant_signature


@dataclass(frozen=True)
class ScenarioScript:
    """One materialised timeline: safe to hand to exactly one simulator run."""

    topology: ClusterTopology
    initial_tenants: Tuple[Tenant, ...]
    events: Tuple[ScenarioEvent, ...]

    def __post_init__(self) -> None:
        times = [event.time for event in self.events]
        if times != sorted(times):
            raise ValidationError("scenario events must be sorted by time")

    def fingerprint(self) -> str:
        """SHA-256 over tenant and event signatures: the determinism probe."""
        digest = hashlib.sha256()
        for tenant in self.initial_tenants:
            digest.update(repr(_tenant_signature(tenant)).encode())
        for event in self.events:
            digest.update(repr(event.signature()).encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class Scenario:
    """A named, seeded dynamic-workload recipe.

    ``builder`` must be a module-level callable ``builder(scenario) ->
    ScenarioScript`` (picklability is what lets scenario sweeps ride the
    process backend); ``params`` holds the scenario's shape knobs as a
    sorted tuple of pairs so the recipe stays hashable and frozen.
    """

    name: str
    builder: Callable[["Scenario"], ScenarioScript]
    seed: int = 0
    num_rounds: int = 24
    round_duration: float = 300.0
    params: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_rounds < 1:
            raise ValidationError("num_rounds must be >= 1")
        if self.round_duration <= 0:
            raise ValidationError("round_duration must be positive")

    @property
    def horizon(self) -> float:
        """Total simulated seconds: ``num_rounds * round_duration``."""
        return self.num_rounds * self.round_duration

    @property
    def last_round_start(self) -> float:
        """Start time of the final round — the last instant an event can fire.

        Builders clamp generated event times to this so a recipe's whole
        timeline stays observable at any ``rounds`` setting.
        """
        return (self.num_rounds - 1) * self.round_duration

    @property
    def options(self) -> Dict[str, object]:
        """The shape knobs as a plain dict (builders read them from here)."""
        return dict(self.params)

    def param(self, key: str, default: object = None) -> object:
        return self.options.get(key, default)

    def with_seed(self, seed: int) -> "Scenario":
        """The same recipe under a different random seed."""
        return replace(self, seed=int(seed))

    def materialize(self) -> ScenarioScript:
        """Expand the recipe into a fresh, single-use timeline."""
        return self.builder(self)

    def simulation_config(
        self, overrides: Optional[Mapping[str, object]] = None
    ) -> SimulationConfig:
        """A :class:`SimulationConfig` matching this scenario's horizon."""
        options: Dict[str, object] = {
            "num_rounds": self.num_rounds,
            "round_duration": self.round_duration,
            "stop_when_idle": True,
        }
        options.update(overrides or {})
        return SimulationConfig(**options)  # type: ignore[arg-type]


__all__ = ["Scenario", "ScenarioScript"]
