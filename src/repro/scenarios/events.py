"""The scenario event vocabulary: timed mutations of a running simulation.

Every event is a frozen dataclass with a ``time`` (seconds since the
simulation start) and an ``apply(simulator, now)`` method — the protocol
:class:`~repro.cluster.simulator.ClusterSimulator` drains at each round
boundary.  ``now`` is the start time of the round the event actually
fires in (events quantise to round boundaries; a job's *submit_time* may
still be the exact arrival instant, so JCTs stay honest).

Events are plain data: building a scenario produces a list of them, and
two scenarios built from the same name and seed produce streams with
identical :meth:`ScenarioEvent.signature` sequences — the determinism
contract the scenario tests pin down.  Equality via ``==`` is deliberately
not the comparison tool (jobs and tenants hold numpy arrays and mutable
run state); compare signatures instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.cluster.job import Job
from repro.cluster.tenant import Tenant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.simulator import ClusterSimulator


@dataclass(frozen=True, eq=False)
class ScenarioEvent:
    """Base timed event: fires once, at the first round starting >= ``time``."""

    time: float

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        raise NotImplementedError

    def signature(self) -> Tuple:
        """A content tuple of primitives: equal streams <=> equal signatures."""
        return (type(self).__name__, round(float(self.time), 6))


def _job_signature(job: Job) -> Tuple:
    """The content of one job, reduced to hashable primitives."""
    return (
        job.job_id,
        job.tenant,
        job.model_name,
        job.num_workers,
        round(float(job.total_iterations), 6),
        round(float(job.submit_time), 6),
        tuple(round(float(v), 9) for v in job.true_throughput),
    )


def _tenant_signature(tenant: Tenant) -> Tuple:
    return (
        tenant.name,
        round(float(tenant.weight), 6),
        round(float(tenant.arrival_time), 6),
        None
        if tenant.departure_time is None
        else round(float(tenant.departure_time), 6),
        tuple(_job_signature(job) for job in tenant.jobs),
    )


@dataclass(frozen=True, eq=False)
class TenantArrival(ScenarioEvent):
    """A new tenant joins the cluster with its initial bag of jobs."""

    tenant: Tenant = None  # type: ignore[assignment]

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        simulator.add_tenant(self.tenant)

    def signature(self) -> Tuple:
        return (*super().signature(), _tenant_signature(self.tenant))


@dataclass(frozen=True, eq=False)
class TenantDeparture(ScenarioEvent):
    """A tenant leaves; unfinished jobs are abandoned (churn, not drain)."""

    tenant_name: str = ""

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        simulator.remove_tenant(self.tenant_name, now)

    def signature(self) -> Tuple:
        return (*super().signature(), self.tenant_name)


@dataclass(frozen=True, eq=False)
class JobArrival(ScenarioEvent):
    """An existing tenant submits one more job (bursts, diurnal load)."""

    tenant_name: str = ""
    job: Job = None  # type: ignore[assignment]

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        simulator.add_job(self.tenant_name, self.job)

    def signature(self) -> Tuple:
        return (*super().signature(), self.tenant_name, _job_signature(self.job))


@dataclass(frozen=True, eq=False)
class DeviceFailure(ScenarioEvent):
    """Devices fail at the start of the round (capacity shrinks)."""

    device_ids: Tuple[int, ...] = ()

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        # through the simulator (not the bare topology) so the warm-start
        # engine sees the shape change and flushes its decision memo
        simulator.fail_devices(self.device_ids)

    def signature(self) -> Tuple:
        return (*super().signature(), tuple(self.device_ids))


@dataclass(frozen=True, eq=False)
class DeviceRepair(ScenarioEvent):
    """Previously failed devices return to service."""

    device_ids: Tuple[int, ...] = ()

    def apply(self, simulator: "ClusterSimulator", now: float) -> None:
        simulator.repair_devices(self.device_ids)

    def signature(self) -> Tuple:
        return (*super().signature(), tuple(self.device_ids))


__all__ = [
    "DeviceFailure",
    "DeviceRepair",
    "JobArrival",
    "ScenarioEvent",
    "TenantArrival",
    "TenantDeparture",
]
