"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``allocate``         solve a JSON instance with a chosen scheduler
                     (alias: ``solve``; ``--pipeline {default,bare}``
                     selects the gateway middleware pipeline)
``audit``            run the Table-1 property audit on a JSON instance
``audit-report``     continuous-auditing report: summarize an audit
                     ledger, or replay the seeded scenario streams
                     through an audited pipeline (``--replay``,
                     ``--inject-unfair``); exits 1 on any confirmed
                     fairness violation (see ``docs/auditing.md``)
``compare``          efficiency/fairness summary of all schedulers on an instance
``frontier``         print the efficiency-fairness frontier of an instance
``list-schedulers``  render the scheduler registry (name, family, capabilities)
``list-middleware``  render the default gateway pipeline (stage order,
                     capability flags), mirroring ``list-schedulers``
``simulate``         replay a named dynamic scenario through the simulator
                     (warm-started rounds by default; ``--cold`` disables);
                     ``trace:<name>`` scenarios replay ingested traces
``list-scenarios``   render the scenario library (name, family, defaults,
                     description) — cluster scenarios, fleet scenarios,
                     and ingested ``trace:<name>`` replays in one table
``fleet-sim``        run a multi-region fleet simulation: regions fan out
                     across execution backends, per-round metrics stream
                     to a ``repro/fleetmetrics-v1`` JSONL sink, and the
                     global quota layer rebalances tenant weights every
                     ``--window-rounds`` (exit 1 on any checked fairness
                     violation; see ``docs/fleet.md``)
``ingest-trace``     normalize an external trace file (CSV/JSONL) into
                     the trace store, making it available as a
                     ``trace:<name>`` scenario
``experiments``      run the paper experiments (all or a subset, ``--jobs N``)
``bench``            time a batch of solves serial vs parallel backends;
                     ``--json`` writes a ``BENCH_parallel.json`` record
                     *and* a ``BENCH_gateway.json`` pipeline-on/off
                     comparison next to it, appending both to the
                     persistent benchmark ledger (``--ledger DIR``;
                     see :mod:`repro.benchledger`); ``--compare BASE``
                     renders a regression report against a prior run
                     (run id, git ref, or ``latest``) and exits 1 when
                     a gated hot-path metric regresses — including the
                     5% ``audit_overhead_vs_hot`` budget of the audited
                     pipeline
``serve``            run the async sharded HTTP serving layer
                     (``--port --shards --pipeline --max-in-flight``;
                     ``--audit RATE`` samples responses into the
                     continuous fairness auditor and serves
                     ``GET /audit/report``; see :mod:`repro.server`
                     and ``docs/server.md``)
``loadtest``         drive a running server with the open-loop bursty
                     load generator and print the latency/throughput
                     report (``--json`` writes a ``BENCH_serve.json``)
``demo``             write a demo instance JSON to get started

``compare``, ``frontier``, ``experiments``, and ``bench`` accept
``--backend {auto,serial,thread,process}`` and ``--jobs N`` to fan
independent solves out through :mod:`repro.parallel`.

``repro --version`` prints the package version.

Every command resolves schedulers through the registry
(:mod:`repro.registry`) and solves through the middleware-pipeline
gateway (:mod:`repro.gateway`; the legacy
:class:`~repro.service.SchedulingService` facade delegates to it), so
per-scheduler audit policy (``pe_within``, ``efficiency_constraint``)
comes from each allocator's registered metadata — overridable with
``--pe-within`` / ``--efficiency-constraint`` — and new allocators
appear in every command the moment they self-register.

Instances use the ``repro/instance-v1`` JSON schema (see
:mod:`repro.core.serialization`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.core import (
    allocation_to_dict,
    instance_to_dict,
    load_instance,
)
from repro.gateway import Gateway, bare_pipeline
from repro.parallel import BACKEND_NAMES
from repro.registry import registry_rows, scheduler_names
from repro.service import SchedulingService

#: One service per process: repeated solves within a command share the cache.
_SERVICE = SchedulingService()

#: The default middleware pipeline behind every CLI solve.
_GATEWAY = _SERVICE.gateway

#: ``--pipeline`` spellings -> gateway factory.
_PIPELINES = {
    "default": lambda: _GATEWAY,
    "bare": lambda: Gateway(bare_pipeline()),
}

#: CLI spelling -> audit keyword value for ``--pe-within``.
_PE_CHOICES = ("envy_free", "equal_throughput", "none")
_EFFICIENCY_CHOICES = ("none", "envy_free", "equal_throughput", "sharing_incentive")


def _print_table(rows: List[dict], stream=None) -> None:
    stream = stream or sys.stdout
    if not rows:
        return
    headers: List[str] = []
    for row in rows:
        for key in row:
            if key not in headers:
                headers.append(key)

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.4f}"
        return str(value)

    widths = {
        header: max(len(header), *(len(fmt(row.get(header, ""))) for row in rows))
        for header in headers
    }
    print("  ".join(h.ljust(widths[h]) for h in headers), file=stream)
    for row in rows:
        print(
            "  ".join(fmt(row.get(h, "")).ljust(widths[h]) for h in headers),
            file=stream,
        )


# -- commands ---------------------------------------------------------------
def cmd_allocate(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    gateway = _PIPELINES[getattr(args, "pipeline", "default")]()
    response = gateway.solve(instance, args.scheduler)
    payload = allocation_to_dict(response.allocation)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote allocation to {args.output}")
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    overrides = {}
    if args.pe_within is not None:
        overrides["pe_within"] = None if args.pe_within == "none" else args.pe_within
    if args.efficiency_constraint is not None:
        overrides["efficiency_constraint"] = args.efficiency_constraint
    report = _SERVICE.audit(
        instance, args.scheduler, sp_trials=args.sp_trials, **overrides
    )
    _print_table([report.as_row()])
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    _print_table(
        _SERVICE.compare(instance, backend=args.backend, max_workers=args.jobs)
    )
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    alphas = [float(a) for a in args.alphas.split(",")]
    points = _SERVICE.frontier(
        instance, alphas=alphas, backend=args.backend, max_workers=args.jobs
    )
    _print_table(
        [
            {
                "alpha": point.alpha,
                "total efficiency": point.total_efficiency,
                "min throughput": point.min_throughput,
                "jain index": point.jain,
            }
            for point in points
        ]
    )
    return 0


def cmd_list_schedulers(args: argparse.Namespace) -> int:
    _print_table(registry_rows())
    return 0


def cmd_list_middleware(args: argparse.Namespace) -> int:
    """Render the default gateway pipeline: stage order + capabilities."""
    _print_table(_GATEWAY.describe())
    return 0


def cmd_list_scenarios(args: argparse.Namespace) -> int:
    """One table across all three scenario families: cluster, fleet, trace."""
    from repro.fleet.library import fleet_scenario_rows
    from repro.scenarios import scenario_rows
    from repro.traces import trace_rows

    _print_table(scenario_rows() + fleet_scenario_rows() + trace_rows())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Replay one named scenario under one or more schedulers."""
    from repro.exceptions import UnknownTraceError
    from repro.scenarios import (
        ScenarioRunner,
        make_scenario,
        scenario_sweep,
        sweep_summary,
    )

    try:
        scenario = make_scenario(
            args.scenario, seed=args.seed, rounds=args.rounds
        )
    except UnknownTraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    warm = not args.cold
    rows = []
    warm_notes = []
    for scheduler in args.schedulers:
        if args.seeds:
            results = scenario_sweep(
                scenario,
                args.seeds,
                scheduler=scheduler,
                backend=args.backend or "auto",
                max_workers=args.jobs,
                warm=warm,
            )
            rows.append(sweep_summary(results))
        else:
            result = ScenarioRunner(
                scenario, scheduler=scheduler, warm=warm
            ).run()
            rows.append(result.summary_row())
            total = result.warm_hits + result.cold_solves
            warm_notes.append(
                f"{scheduler}: {result.warm_hits}/{total} rounds warm-started"
            )
    print(
        f"scenario {scenario.name!r}: {scenario.num_rounds} rounds x "
        f"{scenario.round_duration:.0f}s ({scenario.description})"
    )
    _print_table(rows)
    if args.cold:
        print("warm-start disabled (--cold): every round solved from scratch")
    elif warm_notes:
        print("; ".join(warm_notes))
    return 0


def cmd_fleet_sim(args: argparse.Namespace) -> int:
    """Run one fleet scenario: fan out regions, stream metrics, audit quotas."""
    import os
    import tempfile

    from repro.exceptions import UnknownTraceError, ValidationError
    from repro.fleet import FleetSimulator, resolve_fleet_scenario

    try:
        fleet = resolve_fleet_scenario(
            args.scenario,
            seed=args.seed,
            regions=args.regions,
            rounds=args.rounds,
        )
    except UnknownTraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    metrics_path = args.metrics
    if metrics_path is None:
        handle, metrics_path = tempfile.mkstemp(
            prefix=f"fleet-{fleet.seed}-", suffix=".jsonl"
        )
        os.close(handle)
    # one run = one stream: drop any previous content at this path so
    # window aggregates never mix runs (the sink itself only appends)
    if os.path.exists(metrics_path):
        os.remove(metrics_path)

    result = FleetSimulator(
        fleet,
        scheduler=args.scheduler,
        backend=args.backend or "auto",
        max_workers=args.jobs,
        rebalance=not args.no_rebalance,
        window_rounds=args.window_rounds,
        check_properties=not args.no_check,
        metrics_path=metrics_path,
    ).run()

    print(
        f"fleet {result.fleet!r}: {result.num_regions} regions x "
        f"{fleet.num_rounds} rounds, scheduler {result.scheduler}, "
        f"backend {result.backend}, {result.wall_seconds:.2f}s"
    )
    _print_table([region.as_row() for region in result.regions])
    windows = result.window_summary(args.window_rounds)
    if windows:
        print(f"streamed metrics: {metrics_path}")
        _print_table(windows)
    print(
        f"rebalance windows: {len(result.quota.windows)} "
        f"({result.quota.checked_windows} PE/SI-checked), "
        f"fairness violations: {result.fairness_violations}"
    )
    print(f"fleet fingerprint: {result.fingerprint()}")
    return 1 if result.fairness_violations else 0


def cmd_ingest_trace(args: argparse.Namespace) -> int:
    """Normalize one external trace file into the trace store."""
    import os

    from repro.exceptions import TraceFormatError
    from repro.traces import TraceStore, ingest_file

    try:
        records = ingest_file(args.file, fmt=args.format)
        store = (
            TraceStore(args.store) if args.store else TraceStore.default()
        )
        if store is None:
            print(
                "error: no trace store configured; pass --store or set "
                "$REPRO_TRACE_DIR",
                file=sys.stderr,
            )
            return 2
        name = args.name or os.path.splitext(os.path.basename(args.file))[0]
        path = store.save(name, records)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"ingested {len(records)} jobs from {args.file} -> {path}")
    print(f"replay with: repro simulate --scenario trace:{name}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_suite, suite_ok

    outcomes = run_suite(
        args.ids, backend=args.backend or "auto", jobs=args.jobs
    )
    return 0 if suite_ok(outcomes) else 1


def _gateway_bench_rows(requests, repeat: int):
    """Pipeline-on/off comparison rows for ``BENCH_gateway.json``.

    Times the same request set four ways: through a bare pipeline (the
    terminal solver only — every pass is a cold LP), through the default
    pipeline with the caches cleared each pass (cold, measuring pipeline
    overhead on the LP-dominated path), through the default pipeline
    pre-warmed (the cache+warm hot path), and through the default
    pipeline pre-warmed *with continuous auditing on* (sample rate 1.0,
    audit worker drained before timing — steady state, where the stage's
    settled-key memo reduces the capture to one set lookup).  Hot and
    audited samples are taken as tightly adjacent pairs with the order
    alternating each pair, and the audited row carries
    ``audit_overhead_vs_hot`` — the *median* of the per-pair ratios,
    which host-noise bursts on a shared machine cannot move — the
    lower-is-better ratio the 5% ledger gate watches.
    Returns the ``repro/bench-v1`` rows plus a correctness flag:
    hot-path allocations must match the bare pipeline bit for bit.
    """
    import statistics as _statistics
    import time as _time

    import numpy as np

    from repro.auditor.middleware import AuditMiddleware
    from repro.auditor.worker import AuditWorker
    from repro.benchio import bench_stats
    from repro.gateway import default_pipeline

    def time_passes(gateway, clear: bool):
        samples, responses = [], None
        for _ in range(repeat):
            if clear:
                gateway.clear_cache()
            start = _time.perf_counter()
            responses = [gateway.solve(request) for request in requests]
            samples.append(_time.perf_counter() - start)
        return bench_stats(samples), responses

    bare_stats, bare_responses = time_passes(Gateway(bare_pipeline()), clear=False)
    pipeline = Gateway(default_pipeline())
    cold_stats, _ = time_passes(pipeline, clear=True)
    for request in requests:  # warm the cache for the hot passes
        pipeline.solve(request)

    audit_worker = AuditWorker(None)  # in-memory only: no ledger IO in timings
    audited = Gateway(
        default_pipeline(audit=AuditMiddleware(1.0, worker=audit_worker))
    )
    for request in requests:  # warm the cache and enqueue every audit once
        audited.solve(request)
    audit_worker.drain()  # steady state: settled-key memo armed

    # pair the hot and audited samples tightly in time, alternating the
    # order each pair: the audit ratio divides two sub-millisecond
    # numbers, so machine-load drift must hit both sides of every pair
    # equally or it shows up as phantom overhead — and batch enough
    # passes per sample that the clock sees milliseconds, not ticks
    probe_start = _time.perf_counter()
    hot_responses = [pipeline.solve(request) for request in requests]
    probe = _time.perf_counter() - probe_start
    inner = max(1, int(0.02 / max(probe, 1e-7)))

    def _hot_sample():
        start = _time.perf_counter()
        responses = None
        for _ in range(inner):
            responses = [pipeline.solve(request) for request in requests]
        return (_time.perf_counter() - start) / inner, responses

    def _audited_sample():
        start = _time.perf_counter()
        responses = None
        for _ in range(inner):
            responses = [audited.solve(request) for request in requests]
        return (_time.perf_counter() - start) / inner, responses

    hot_samples, audited_samples = [], []
    audited_responses = None
    for pair in range(max(repeat, 9)):
        if pair % 2 == 0:
            sample, hot_responses = _hot_sample()
            hot_samples.append(sample)
            sample, audited_responses = _audited_sample()
            audited_samples.append(sample)
        else:
            sample, audited_responses = _audited_sample()
            audited_samples.append(sample)
            sample, hot_responses = _hot_sample()
            hot_samples.append(sample)
    audit_worker.stop()
    hot_stats = bench_stats(hot_samples)
    audited_stats = bench_stats(audited_samples)

    identical = all(
        np.allclose(a.allocation.matrix, b.allocation.matrix, atol=1e-9)
        for a, b in zip(hot_responses, bare_responses)
    ) and all(
        np.allclose(a.allocation.matrix, b.allocation.matrix, atol=1e-9)
        for a, b in zip(audited_responses, bare_responses)
    )
    bare_p50 = bare_stats["p50"] or float("inf")
    hot_p50 = hot_stats["p50"] or float("inf")
    rows = [
        {"name": "bare/cold", **bare_stats},
        {
            "name": "pipeline/cold",
            **cold_stats,
            "overhead_vs_bare": cold_stats["p50"] / bare_p50,
        },
        {
            "name": "pipeline/hot",
            **hot_stats,
            "speedup_vs_bare_cold": bare_p50 / hot_p50,
            "matches_bare": bool(identical),
        },
        {
            "name": "pipeline+audit/hot",
            **audited_stats,
            "speedup_vs_bare_cold": bare_p50
            / (audited_stats["p50"] or float("inf")),
            # median of per-pair ratios: drift cancels inside each
            # adjacent pair and a noise burst only costs its pair
            # (mirrors benchmarks/test_bench_audit.py)
            "audit_overhead_vs_hot": _statistics.median(
                audited / (hot or float("inf"))
                for audited, hot in zip(audited_samples, hot_samples)
            ),
        },
    ]
    return rows, identical


def cmd_bench(args: argparse.Namespace) -> int:
    """Time a batch of solves on each requested backend and report speedup."""
    import os
    import time as _time

    import numpy as np

    from repro.benchio import bench_stats
    from repro.gateway import Request, default_pipeline
    from repro.workloads.generator import random_instance

    instances = [
        random_instance(args.users, args.gpu_types, seed=args.seed + index)
        for index in range(args.instances)
    ]
    requests = [
        Request(instance=instance, scheduler=scheduler)
        for instance in instances
        for scheduler in args.schedulers
    ]

    baseline = None
    rows = []
    json_rows = []
    backends = ["serial", *(b for b in args.backends if b != "serial")]
    for backend_name in backends:
        gateway = Gateway(default_pipeline())
        samples = []
        results = None
        for _ in range(max(1, args.repeat)):
            gateway.clear_cache()
            start = _time.perf_counter()
            results = gateway.solve_batch(
                requests,
                backend=None if backend_name == "serial" else backend_name,
                max_workers=args.jobs,
            )
            samples.append(_time.perf_counter() - start)
        stats = bench_stats(samples)
        matrices = [result.allocation.matrix for result in results]
        if baseline is None:
            baseline = (stats["p50"], matrices)
        identical = all(
            np.allclose(matrix, reference, atol=1e-8)
            for matrix, reference in zip(matrices, baseline[1])
        )
        # repeat the batch: the merged cache must serve it entirely
        before_repeat = gateway.cache_info()
        gateway.solve_batch(
            requests, backend=None if backend_name == "serial" else backend_name,
            max_workers=args.jobs,
        )
        cache = gateway.cache_info()
        repeat_hits = cache.hits - before_repeat.hits
        speedup = baseline[0] / stats["p50"] if stats["p50"] > 0 else float("inf")
        rows.append(
            {
                "backend": backend_name,
                "seconds": stats["p50"],
                "speedup": speedup,
                "matches serial": "yes" if identical else "NO",
                "repeat hit rate": f"{repeat_hits / len(requests):.0%}",
            }
        )
        json_rows.append(
            {
                "name": backend_name,
                **stats,
                "speedup_vs_serial": speedup,
                "matches_serial": bool(identical),
            }
        )
    print(
        f"{len(requests)} solves "
        f"({args.instances} instances x {len(args.schedulers)} schedulers, "
        f"{args.users} users x {args.gpu_types} GPU types)"
    )
    _print_table(rows)
    ok = all(row["matches serial"] == "yes" for row in rows)
    # --json and --compare both need the full records (the pipeline-on/off
    # comparison rides along so the gateway perf trajectory stays populated)
    need_records = args.json is not None or args.compare is not None
    parallel_record = gateway_record = None
    if need_records:
        from repro.benchio import build_bench_record, write_record_json

        meta = {
            "instances": args.instances,
            "users": args.users,
            "gpu_types": args.gpu_types,
            "schedulers": list(args.schedulers),
            "repeat": max(1, args.repeat),
        }
        gateway_rows, gateway_ok = _gateway_bench_rows(
            requests, repeat=max(1, args.repeat)
        )
        ok = ok and gateway_ok
        parallel_record = build_bench_record("parallel", json_rows, meta=meta)
        gateway_record = build_bench_record("gateway", gateway_rows, meta=meta)
        if args.json:
            print(f"wrote {write_record_json(args.json, parallel_record)}")
            gateway_path = os.path.join(
                os.path.dirname(args.json) or ".", "BENCH_gateway.json"
            )
            print(f"wrote {write_record_json(gateway_path, gateway_record)}")
    exit_code = 0 if ok else 1
    if need_records:
        ledger_code = _bench_ledger_and_compare(
            args, [parallel_record, gateway_record]
        )
        exit_code = exit_code or ledger_code
    return exit_code


def _bench_ledger_and_compare(args: argparse.Namespace, records) -> int:
    """Append this run to the ledger; with ``--compare``, report + gate.

    Returns 0 when nothing is gated or every gate passes, 1 when a gate
    fails, 2 on a usage/lookup error (no ledger, unknown base spec).
    """
    from repro.benchledger import (
        BaselineNotFound,
        BenchLedger,
        GatePolicy,
        LedgerError,
        Manifest,
        apply_gates,
        compare_runs,
        render_text,
    )

    if args.no_ledger:
        ledger = None
    elif args.ledger:
        ledger = BenchLedger(args.ledger)
    else:
        ledger = BenchLedger.default()
    if ledger is None:
        if args.compare is not None:
            print(
                "error: --compare needs a ledger "
                "(pass --ledger DIR or set $REPRO_LEDGER_DIR)",
                file=sys.stderr,
            )
            return 2
        return 0

    config = {
        "source": "repro bench",
        "instances": args.instances,
        "users": args.users,
        "gpu_types": args.gpu_types,
        "schedulers": list(args.schedulers),
        "repeat": max(1, args.repeat),
    }
    try:
        manifest = Manifest.from_record(records[0], config=config)
        run_id = ledger.begin_run(manifest)
        entries = [
            ledger.append(record, run_id=run_id, config=config)
            for record in records
        ]
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"ledger: appended run {run_id} -> {ledger.root}")
    if args.compare is None:
        return 0

    try:
        base_id = ledger.resolve_base(args.compare, exclude=run_id)
    except BaselineNotFound as exc:
        if args.compare == "latest":
            # a fresh ledger's first run has nothing to regress against
            print(f"compare: {exc}; recorded the baseline instead")
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = compare_runs(ledger.entries_for_run(base_id), entries)
    policy = GatePolicy()
    if args.max_regression is not None:
        policy = policy.with_max_regression(args.max_regression)
    verdict = apply_gates(report, policy)
    if args.format == "json":
        print(
            json.dumps(
                {"report": report.to_json(), "gates": verdict.to_json()},
                indent=2,
            )
        )
    else:
        print(render_text(report))
        print(verdict.describe())
    return 0 if verdict.ok else 1


def cmd_audit_report(args: argparse.Namespace) -> int:
    """Continuous-auditing report; exit 1 on any confirmed violation.

    Two modes.  With a ledger (``--ledger DIR`` or ``$REPRO_AUDIT_DIR``)
    and no ``--replay``, summarizes the records already on disk — the
    operational "what did the live auditor see" view.  Otherwise replays
    the seeded scenario streams through an audited default pipeline
    (``docs/auditing.md``): same scenarios + seed ⇒ identical records,
    which is how CI pins the Table-1 verdicts.  ``--inject-unfair``
    registers the starve-everyone negative control for the replay; the
    report then *must* exit 1 or the audit wall is broken.
    """
    from repro.auditor import (
        UNFAIR_SCHEDULER,
        AuditLedger,
        AuditLedgerError,
        confirmed_violations,
        injected_unfair_scheduler,
        replay_audit,
        summarize_records,
    )
    from repro.auditor.report import (
        DEFAULT_REPLAY_SCENARIOS,
        DEFAULT_REPLAY_SCHEDULERS,
    )

    if args.no_ledger:
        ledger = None
    elif args.ledger:
        ledger = AuditLedger(args.ledger)
    else:
        ledger = AuditLedger.default()

    replay = args.replay or args.inject_unfair or ledger is None
    scenarios = args.scenarios or list(DEFAULT_REPLAY_SCENARIOS)
    if replay:
        schedulers = list(args.schedulers or DEFAULT_REPLAY_SCHEDULERS)
        replay_kwargs = dict(
            rounds=args.rounds,
            seed=args.seed,
            sp_trials=args.sp_trials,
            rate=args.rate,
            ledger=ledger,
        )
        if args.inject_unfair:
            with injected_unfair_scheduler():
                records = replay_audit(
                    scenarios, schedulers + [UNFAIR_SCHEDULER], **replay_kwargs
                )
        else:
            records = replay_audit(scenarios, schedulers, **replay_kwargs)
    else:
        try:
            records = ledger.all_records()
        except AuditLedgerError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.scenarios:
            records = [r for r in records if r["scenario"] in set(args.scenarios)]
        if args.schedulers:
            records = [
                r for r in records if r["scheduler"] in set(args.schedulers)
            ]

    rows = summarize_records(records)
    confirmed = confirmed_violations(records)
    errors = sum(1 for record in records if record["verdict"] == "error")
    if args.format == "json":
        print(
            json.dumps(
                {
                    "records": len(records),
                    "summary": rows,
                    "confirmed_violations": len(confirmed),
                    "errors": errors,
                },
                indent=2,
                default=float,
            )
        )
    else:
        if not records:
            print("no audit records" + ("" if replay else f" in {ledger.root}"))
            return 0
        _print_table(rows)
        if errors:
            print(f"{errors} audit(s) errored (not gating; see the ledger)")
        if confirmed:
            print(
                f"{len(confirmed)} confirmed violation(s): "
                + ", ".join(
                    sorted(
                        {
                            f"{r['scenario']}/{r['scheduler']}"
                            for r in confirmed
                        }
                    )
                )
            )
        else:
            print("no confirmed violations")
    return 1 if confirmed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async sharded serving layer until SIGINT/SIGTERM."""
    from repro.server import serve

    return serve(
        args.host,
        args.port,
        shards=args.shards,
        pipeline=args.pipeline,
        max_in_flight=args.max_in_flight,
        audit=args.audit,
        audit_ledger=args.audit_ledger,
        audit_seed=args.audit_seed,
    )


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive a running server with the open-loop bursty load generator."""
    from repro.benchio import write_bench_json
    from repro.server import LoadGenConfig, run_load

    config = LoadGenConfig(
        duration_s=args.duration,
        rate=args.rate,
        burst_factor=args.burst_factor,
        num_instances=args.instances,
        users=args.users,
        gpu_types=args.gpu_types,
        schedulers=tuple(args.schedulers),
        seed=args.seed,
        use_cache=not args.no_cache,
    )
    report = run_load(args.host, args.port, config)
    _print_table([report.summary_row()])
    if report.retry_after_values:
        print(
            f"{report.shed} requests shed with 429; Retry-After "
            f"{min(report.retry_after_values):.0f}-"
            f"{max(report.retry_after_values):.0f}s"
        )
    if args.json:
        meta = {
            "host": args.host,
            "port": args.port,
            "rate": args.rate,
            "duration_s": args.duration,
            "burst_factor": args.burst_factor,
            "schedulers": list(args.schedulers),
            "use_cache": not args.no_cache,
        }
        path = write_bench_json(
            args.json, "serve", report.bench_rows("loadtest"), meta=meta
        )
        print(f"wrote {path}")
    return 0 if report.errors == 0 else 1


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.workloads.generator import zoo_instance

    instance = zoo_instance(["vgg16", "resnet50", "transformer", "lstm"])
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(instance_to_dict(instance), handle, indent=2)
    print(f"wrote demo instance (4 tenants, paper cluster) to {args.output}")
    return 0


# -- parser -------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="OEF: fair + efficient scheduling for heterogeneous GPU clusters",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    names = scheduler_names()

    allocate = sub.add_parser(
        "allocate", aliases=["solve"], help="solve a JSON instance"
    )
    allocate.add_argument("instance", help="path to an instance JSON file")
    allocate.add_argument("--scheduler", default="oef-coop", choices=names)
    allocate.add_argument("--output", help="write the allocation JSON here")
    allocate.add_argument(
        "--pipeline",
        choices=sorted(_PIPELINES),
        default="default",
        help="gateway middleware pipeline to solve through: the full "
        "default stack or a bare terminal solver (differential testing; "
        "allocations are bit-identical either way)",
    )
    allocate.set_defaults(func=cmd_allocate)

    audit = sub.add_parser("audit", help="Table-1 property audit")
    audit.add_argument("instance")
    audit.add_argument("--scheduler", default="oef-coop", choices=names)
    audit.add_argument("--sp-trials", type=int, default=4)
    audit.add_argument(
        "--pe-within",
        choices=_PE_CHOICES,
        default=None,
        help="override the registered Pareto-improvement domain",
    )
    audit.add_argument(
        "--efficiency-constraint",
        choices=_EFFICIENCY_CHOICES,
        default=None,
        help="override the registered optimal-efficiency constraint set",
    )
    audit.set_defaults(func=cmd_audit)

    audit_report = sub.add_parser(
        "audit-report",
        help="summarize the continuous-audit ledger or replay the "
        "seeded audit streams (exit 1 on a confirmed violation)",
    )
    audit_report.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="audit ledger directory (default: $REPRO_AUDIT_DIR); "
        "summarized as-is unless --replay/--inject-unfair runs a "
        "fresh replay (which appends here)",
    )
    audit_report.add_argument(
        "--no-ledger",
        action="store_true",
        help="ignore any configured ledger (replay in memory only)",
    )
    audit_report.add_argument(
        "--replay",
        action="store_true",
        help="replay the seeded scenario streams through an audited "
        "pipeline instead of reading the ledger",
    )
    audit_report.add_argument(
        "--inject-unfair",
        action="store_true",
        help="register the deliberately unfair negative-control "
        "scheduler for the replay; the report must then exit 1",
    )
    audit_report.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        metavar="NAME",
        help="scenario streams to replay or filter to "
        "(default: steady tenant-churn)",
    )
    audit_report.add_argument(
        "--schedulers",
        nargs="+",
        default=None,
        metavar="NAME",
        help="schedulers to replay or filter to "
        "(default: oef-coop gandiva-fair gavel)",
    )
    audit_report.add_argument("--rounds", type=int, default=None)
    audit_report.add_argument("--seed", type=int, default=7)
    audit_report.add_argument("--sp-trials", type=int, default=2)
    audit_report.add_argument(
        "--rate", type=float, default=1.0,
        help="replay sampling rate in [0, 1] (default: audit everything)",
    )
    audit_report.add_argument(
        "--format", choices=["text", "json"], default="text"
    )
    audit_report.set_defaults(func=cmd_audit_report)

    def add_parallel_flags(command, default_backend=None):
        command.add_argument(
            "--backend",
            choices=BACKEND_NAMES,
            default=default_backend,
            help="execution backend for independent solves "
            f"(default: {default_backend or 'serial'})",
        )
        command.add_argument(
            "--jobs",
            "-j",
            type=int,
            default=None,
            help="max concurrent workers (default: one per core)",
        )

    compare = sub.add_parser("compare", help="compare all schedulers")
    compare.add_argument("instance")
    add_parallel_flags(compare)
    compare.set_defaults(func=cmd_compare)

    frontier = sub.add_parser("frontier", help="efficiency-fairness frontier")
    frontier.add_argument("instance")
    frontier.add_argument("--alphas", default="0,0.25,0.5,0.75,0.9,1.0")
    add_parallel_flags(frontier)
    frontier.set_defaults(func=cmd_frontier)

    list_schedulers = sub.add_parser(
        "list-schedulers", help="show the scheduler registry"
    )
    list_schedulers.set_defaults(func=cmd_list_schedulers)

    list_middleware = sub.add_parser(
        "list-middleware", help="show the default gateway pipeline stages"
    )
    list_middleware.set_defaults(func=cmd_list_middleware)

    simulate = sub.add_parser(
        "simulate", help="replay a named dynamic-workload scenario"
    )
    simulate.add_argument(
        "--scenario",
        required=True,
        help="named scenario from the library, or trace:<name> for an "
        "ingested trace (see `repro list-scenarios`); unknown names "
        "fail with a did-you-mean error",
    )
    simulate.add_argument(
        "--rounds", type=int, default=None,
        help="scheduling rounds to simulate (default: the scenario's own)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--scheduler",
        dest="schedulers",
        nargs="+",
        default=["oef-coop"],
        help="scheduler name(s)/alias(es) to replay the scenario under",
    )
    simulate.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=None,
        help="run a multi-seed sweep instead of one replay "
        "(aggregated row per scheduler; uses --backend/--jobs)",
    )
    simulate.add_argument(
        "--cold",
        action="store_true",
        help="disable warm-started rounds: re-solve the allocation LP "
        "from scratch every round (warm replay is bit-identical, so "
        "this exists for benchmarking and differential testing)",
    )
    add_parallel_flags(simulate)
    simulate.set_defaults(func=cmd_simulate)

    list_scenarios = sub.add_parser(
        "list-scenarios", help="show the scenario library"
    )
    list_scenarios.set_defaults(func=cmd_list_scenarios)

    fleet_sim = sub.add_parser(
        "fleet-sim", help="run a multi-region fleet simulation"
    )
    fleet_sim.add_argument(
        "--scenario",
        required=True,
        help="fleet scenario name (spot-preemption, hetero-generations, "
        "multiregion-failover, tenant-swarm), any cluster scenario, or "
        "trace:<name> — non-fleet scenarios are sharded across regions",
    )
    fleet_sim.add_argument(
        "--regions", type=int, default=None,
        help="number of regions (default: the scenario's own, usually 4)",
    )
    fleet_sim.add_argument(
        "--rounds", type=int, default=None,
        help="scheduling rounds per region (default: the scenario's own)",
    )
    fleet_sim.add_argument("--seed", type=int, default=0)
    fleet_sim.add_argument(
        "--scheduler", default="oef-coop",
        help="regional scheduler (registry name or alias)",
    )
    fleet_sim.add_argument(
        "--window-rounds", type=int, default=6,
        help="rounds per global rebalance window",
    )
    fleet_sim.add_argument(
        "--no-rebalance", action="store_true",
        help="disable the global quota layer (regions stay independent)",
    )
    fleet_sim.add_argument(
        "--no-check", action="store_true",
        help="skip the per-window PE/sharing-incentive property checks",
    )
    fleet_sim.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="stream per-round fleet metrics to this JSONL file "
        "(default: a fresh temp file; the path is printed either way)",
    )
    add_parallel_flags(fleet_sim)
    fleet_sim.set_defaults(func=cmd_fleet_sim)

    ingest_trace = sub.add_parser(
        "ingest-trace", help="normalize an external trace into the store"
    )
    ingest_trace.add_argument(
        "file", help="trace file: CSV or JSONL with per-job rows"
    )
    ingest_trace.add_argument(
        "--name", default=None,
        help="trace name for trace:<name> replay (default: the file stem)",
    )
    ingest_trace.add_argument(
        "--format", choices=["csv", "jsonl"], default=None,
        help="input format (default: sniffed from the file extension)",
    )
    ingest_trace.add_argument(
        "--store", default=None, metavar="DIR",
        help="trace store directory (default: $REPRO_TRACE_DIR, else traces/)",
    )
    ingest_trace.set_defaults(func=cmd_ingest_trace)

    experiments = sub.add_parser("experiments", help="run paper experiments")
    experiments.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    add_parallel_flags(experiments, default_backend="auto")
    experiments.set_defaults(func=cmd_experiments)

    bench = sub.add_parser(
        "bench", help="time a solve batch on serial vs parallel backends"
    )
    bench.add_argument("--instances", type=int, default=16)
    bench.add_argument("--users", type=int, default=12)
    bench.add_argument("--gpu-types", type=int, default=6)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--schedulers",
        nargs="+",
        default=["oef-coop"],
        choices=names,
        help="schedulers to solve each instance with",
    )
    bench.add_argument(
        "--backends",
        nargs="+",
        choices=BACKEND_NAMES,
        default=["thread", "process"],
        help="backends to time against the serial baseline",
    )
    bench.add_argument(
        "--jobs", "-j", type=int, default=None,
        help="max concurrent workers (default: one per core)",
    )
    bench.add_argument(
        "--repeat", type=int, default=1,
        help="timing repetitions per backend (mean/p50/p95 in --json output)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable BENCH_parallel.json record here",
    )
    bench.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="benchmark ledger directory to append this run to "
        "(default: $REPRO_LEDGER_DIR, else benchmarks/ledger in a "
        "repo checkout; only used with --json/--compare)",
    )
    bench.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to any ledger",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASE",
        help="compare this run against a ledger baseline and apply the "
        "regression gates; BASE is a run id, a git ref, or 'latest' "
        "(exit 1 on a gated regression)",
    )
    bench.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="how --compare renders the regression report",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="override every gate threshold with one value, in percent "
        "(provenance rules still apply; see docs/benchmarks.md)",
    )
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the async sharded HTTP serving layer"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks a free one)")
    serve.add_argument(
        "--shards", type=int, default=2,
        help="gateway workers behind the consistent-hash ring",
    )
    serve.add_argument(
        "--pipeline",
        choices=sorted(_PIPELINES),
        default="default",
        help="middleware pipeline each shard solves through",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=None,
        help="per-shard admission bound; excess solves shed as HTTP 429 "
        "with Retry-After (default: unbounded)",
    )
    serve.add_argument(
        "--audit", type=float, default=None, metavar="RATE",
        help="sample this fraction of responses (in [0, 1]) into the "
        "continuous fairness auditor and serve GET /audit/report "
        "(default: auditing off)",
    )
    serve.add_argument(
        "--audit-ledger", default=None, metavar="DIR",
        help="append audit records to this ledger directory "
        "(default: $REPRO_AUDIT_DIR, else in-memory only)",
    )
    serve.add_argument(
        "--audit-seed", type=int, default=0,
        help="seed for the audit sampler and strategyproofness probes",
    )
    serve.set_defaults(func=cmd_serve)

    loadtest = sub.add_parser(
        "loadtest", help="open-loop bursty load test against a running server"
    )
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, default=8080)
    loadtest.add_argument("--duration", type=float, default=3.0)
    loadtest.add_argument("--rate", type=float, default=100.0,
                          help="base arrival rate, requests/second")
    loadtest.add_argument("--burst-factor", type=float, default=4.0)
    loadtest.add_argument("--instances", type=int, default=8)
    loadtest.add_argument("--users", type=int, default=6)
    loadtest.add_argument("--gpu-types", type=int, default=3)
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument(
        "--schedulers", nargs="+", default=["oef-coop"], choices=names
    )
    loadtest.add_argument(
        "--no-cache",
        action="store_true",
        help="mark every request use_cache:false so each one runs a real "
        "LP server-side (saturates a bounded admission stage)",
    )
    loadtest.add_argument(
        "--json", default=None, metavar="PATH",
        help="write a machine-readable BENCH_serve.json record here",
    )
    loadtest.set_defaults(func=cmd_loadtest)

    demo = sub.add_parser("demo", help="write a demo instance JSON")
    demo.add_argument("--output", default="instance.json")
    demo.set_defaults(func=cmd_demo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
