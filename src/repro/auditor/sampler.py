"""The seeded hash sampler gating what the audit stage captures.

Sampling must be three things at once:

* **cheap** — it runs on the gateway hot path, inside the latency the
  bench ledger gates at 5% (``audit_overhead_vs_hot``);
* **deterministic** — the differential and property tests replay the
  same traffic and must see the same sampled subset, whatever thread or
  shard the request landed on; and
* **monotone in the rate** — raising the sampling rate must only *add*
  audited keys, never swap the subset, so operators can dial coverage
  up or down without losing trend continuity per instance.

A stateful counter or RNG stream gives none of these under concurrency,
so the sampler is a pure hash threshold: a key ``fingerprint:scheduler``
is admitted iff the first 8 bytes of ``sha256(seed:key)``, read as a
fraction of 2^64, fall below ``rate``.  The decision depends only on
``(seed, key, rate)``; admission at rate *r* implies admission at every
rate *r' >= r* (same hash point, higher threshold).  Decisions are
memoized in a bounded dict so the steady-state hot-path cost is one
dictionary lookup, not a SHA-256.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict

#: Memoized admit decisions kept per sampler (repeat solves of the same
#: instance re-ask the same question; the answer never changes).
_MAX_CACHED_DECISIONS = 4096

_HASH_SPAN = float(2**64)


def _hash_point(seed: int, key: str) -> float:
    digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / _HASH_SPAN


class AuditSampler:
    """Deterministic, rate-limited admission for the audit stage."""

    def __init__(self, rate: float = 1.0, seed: int = 0):
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate!r}")
        self.rate = rate
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._decisions: Dict[str, bool] = {}
        self.offered = 0
        self.admitted = 0

    def would_admit(self, fingerprint: str, scheduler: str) -> bool:
        """The pure decision, no counters — what the property tests probe."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return _hash_point(self.seed, f"{fingerprint}:{scheduler}") < self.rate

    def admit(self, fingerprint: str, scheduler: str) -> bool:
        """Counted hot-path decision; memoized per ``fingerprint:scheduler``."""
        key = f"{fingerprint}:{scheduler}"
        with self._lock:
            self.offered += 1
            decision = self._decisions.get(key)
            if decision is None:
                decision = self.would_admit(fingerprint, scheduler)
                if len(self._decisions) >= _MAX_CACHED_DECISIONS:
                    self._decisions.clear()
                self._decisions[key] = decision
            if decision:
                self.admitted += 1
            return decision

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rate": self.rate,
                "seed": self.seed,
                "offered": self.offered,
                "admitted": self.admitted,
            }

    def reset(self) -> None:
        with self._lock:
            self._decisions.clear()
            self.offered = 0
            self.admitted = 0

    def __repr__(self) -> str:
        return f"AuditSampler(rate={self.rate}, seed={self.seed})"


__all__ = ["AuditSampler"]
