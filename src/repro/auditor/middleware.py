"""``AuditMiddleware``: the continuous-auditing tap on the gateway.

The stage is a pure observer.  It calls ``next`` first, then — for
successful allocations only — asks the seeded
:class:`~repro.auditor.sampler.AuditSampler` whether this
``(fingerprint, scheduler)`` is in the audited subset and, if so,
hands the instance to the :class:`~repro.auditor.worker.AuditWorker`
without blocking.  The response object is returned untouched (the
differential tests assert byte-identical payloads with the stage at
every legal anchor), and the *entire* capture path is wrapped so a
crashing sampler, worker, or teardown race can never fail a user
request — the worst case is a lost sample, counted in ``stats()``.

Position in :func:`repro.gateway.default_pipeline`: right below
metrics and above coalesce/cache, so the auditor sees every admitted
response — cache hits included (an allocation served from cache is
still an allocation users live under, and the settled-key memo makes
re-observing it a single set lookup).  The batch fan-out lanes replicate the
pipeline *without* this stage (observers are excluded like metrics):
batch solves are audited only via their cache-warming effect on
subsequent singleton traffic.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.auditor.ledger import AuditLedger
from repro.auditor.sampler import AuditSampler
from repro.auditor.worker import AuditWorker
from repro.gateway.envelope import Request, Response, instance_fingerprint
from repro.gateway.middleware import Handler, Middleware


class AuditMiddleware(Middleware):
    """Sample successful responses into the asynchronous audit worker."""

    name = "audit"

    def __init__(
        self,
        rate: float = 1.0,
        *,
        seed: int = 0,
        sampler: Optional[AuditSampler] = None,
        worker: Optional[AuditWorker] = None,
        ledger: Optional[AuditLedger] = None,
        scenario: str = "live",
        registry=None,
    ):
        self.sampler = (
            sampler if sampler is not None else AuditSampler(rate, seed=seed)
        )
        if worker is None:
            worker = AuditWorker(
                ledger if ledger is not None else AuditLedger.default(),
                registry=registry,
                scenario=scenario,
                seed=seed,
            )
        self.worker = worker
        self._lock = threading.Lock()
        self._captured = 0
        self._capture_errors = 0
        #: keys whose capture outcome is settled (sampler rejection is
        #: deterministic, an enqueued audit is owned by the worker) — the
        #: steady-state hot path reduces to this one set lookup instead
        #: of two lock round-trips per solve
        self._observed: set = set()
        self._observed_bound = 4096

    def handle(self, request: Request, next: Handler) -> Response:
        response = next(request)
        # The settled-key check lives inline so the steady-state tap is
        # one set lookup with no helper frame on the hot path.
        try:
            if response.ok and response.allocation is not None:
                fingerprint = (
                    response.fingerprint
                    or request.fingerprint
                    or instance_fingerprint(request.instance)
                )
                if (fingerprint, request.scheduler) not in self._observed:
                    self._capture(fingerprint, request.scheduler, request.instance)
        except Exception:  # noqa: BLE001 - observing must never fail a request
            with self._lock:
                self._capture_errors += 1
        return response

    def _capture(self, fingerprint: str, scheduler: str, instance) -> None:
        key = (fingerprint, scheduler)
        if len(self._observed) >= self._observed_bound:
            self._observed.clear()
        if not self.sampler.admit(fingerprint, scheduler):
            self._observed.add(key)
            return
        if self.worker.submit(instance, scheduler, fingerprint):
            with self._lock:
                self._captured += 1
            self._observed.add(key)
        # a False submit is left unmemoized on purpose: a queue-full drop
        # must stay resubmittable once the backlog clears

    def stats(self) -> Dict[str, object]:
        """Sampler + worker counters, one flat mapping."""
        with self._lock:
            row: Dict[str, object] = {
                "captured": self._captured,
                "capture_errors": self._capture_errors,
            }
        row.update(self.sampler.stats())
        row.update(self.worker.stats())
        return row

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row.update(
            stateful="yes",
            rate=self.sampler.rate,
            scenario=self.worker.scenario,
        )
        return row

    def reset(self) -> None:
        self.sampler.reset()
        self._observed.clear()
        with self._lock:
            self._captured = 0
            self._capture_errors = 0


__all__ = ["AuditMiddleware"]
