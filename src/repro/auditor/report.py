"""Audit-report assembly: replay, summarize, classify — exit non-zero.

Three layers, mirroring the orchestrating-runner shape (run all checks
→ classify → pass/fail summary):

* :func:`replay_audit` — a *seeded, reproducible* audit pass: for each
  named scenario it derives the tenant-population timeline
  (arrivals/departures from the scenario script), synthesizes one
  seeded instance per distinct population size — prefixed by the
  paper's §2.4 worked example as a fixed canary, so every stream
  reproduces the Table-1 verdicts — and drives every requested
  scheduler through an *audited* default gateway pipeline at sampling
  rate 1.0.  The worker drains before returning, so the records are
  complete.
* :func:`summarize_records` — one printable row per
  ``(scenario, scheduler)``: combined Table-1 marks (a property is
  ``yes`` only if it held on every audited instance), verdict counts,
  and the violated-property set.
* :func:`confirmed_violations` — the ``fail``-verdict records that make
  ``repro audit-report`` exit non-zero.  ``error`` verdicts are
  surfaced in the summary but never gate: a broken check is an
  operational problem, not a fairness violation.

:class:`UnfairAllocator` (``--inject-unfair``) is the report's own
negative control: a scheduler that hands every device to tenant 0.  It
is registered only for the duration of the replay and — being absent
from :data:`~repro.auditor.worker.EXPECTED_PROPERTIES` — is held to
every property, so the report must exit non-zero or the wall is broken.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.auditor.ledger import AuditLedger
from repro.auditor.middleware import AuditMiddleware
from repro.auditor.sampler import AuditSampler
from repro.auditor.schema import PROPERTY_KEYS
from repro.auditor.worker import AuditWorker
from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance

#: Registry name the injected negative control uses.
UNFAIR_SCHEDULER = "unfair-grab"

#: Default replay coverage: the two stationary-vs-churn scenario shapes
#: and the three Table-1 schedulers the acceptance criteria name.
DEFAULT_REPLAY_SCENARIOS = ("steady", "tenant-churn")
DEFAULT_REPLAY_SCHEDULERS = ("oef-coop", "gandiva-fair", "gavel")


class UnfairAllocator(Allocator):
    """Negative control: every device goes to tenant 0, everyone else starves."""

    name = UNFAIR_SCHEDULER

    def allocate(self, instance: ProblemInstance) -> Allocation:
        matrix = np.zeros((instance.num_users, instance.num_gpu_types))
        matrix[0, :] = instance.capacities
        return Allocation(matrix, instance)


@contextmanager
def injected_unfair_scheduler(registry=None):
    """Temporarily register :class:`UnfairAllocator`; always unregister."""
    from repro.registry import REGISTRY, register_scheduler

    registry = REGISTRY if registry is None else registry
    register_scheduler(
        UnfairAllocator,
        name=UNFAIR_SCHEDULER,
        family="adversarial",
        description="audit-report negative control (starves all but tenant 0)",
        registry=registry,
    )
    try:
        yield UNFAIR_SCHEDULER
    finally:
        registry.unregister(UNFAIR_SCHEDULER)


# -- replay -----------------------------------------------------------------


def _population_sizes(scenario) -> List[int]:
    """Distinct active-tenant counts along one scenario's timeline."""
    from repro.scenarios.events import TenantArrival, TenantDeparture

    script = scenario.materialize()
    active = len(script.initial_tenants)
    sizes = [active]
    for event in script.events:
        if isinstance(event, TenantArrival):
            active += 1
        elif isinstance(event, TenantDeparture):
            active -= 1
        else:
            continue
        if active >= 2 and active not in sizes:
            sizes.append(active)
    return sizes


def replay_instances(
    scenario_name: str,
    *,
    rounds: Optional[int] = None,
    seed: int = 7,
) -> List[ProblemInstance]:
    """The seeded instance stream one scenario replays through the auditor.

    The paper's §2.4 worked example leads as a fixed canary (it pins the
    Table-1 verdicts: Gavel's dense PE violation, Gandiva_fair's envy,
    OEF-coop's SP gap), followed by one random instance per distinct
    tenant-population size the scenario's arrival/departure timeline
    visits — same name + seed ⇒ identical stream.
    """
    from repro.experiments.table1_properties import paper_example_instance
    from repro.scenarios import make_scenario
    from repro.workloads.generator import random_instance

    scenario = make_scenario(scenario_name, seed=seed, rounds=rounds)
    instances = [paper_example_instance()]
    for size in _population_sizes(scenario):
        instances.append(
            random_instance(
                num_users=size,
                num_gpu_types=3,
                seed=seed * 997 + size,
                devices_per_type=4.0,
            )
        )
    return instances


def replay_audit(
    scenarios: Sequence[str] = DEFAULT_REPLAY_SCENARIOS,
    schedulers: Sequence[str] = DEFAULT_REPLAY_SCHEDULERS,
    *,
    rounds: Optional[int] = None,
    seed: int = 7,
    sp_trials: int = 2,
    rate: float = 1.0,
    ledger: Optional[AuditLedger] = None,
    registry=None,
) -> List[Dict[str, object]]:
    """Audit every ``scheduler x scenario`` replay pair; returns records.

    Each scenario gets its own worker (its records land in that
    scenario's ledger stream) feeding an audited default pipeline, and
    every worker drains before the function returns.
    """
    from repro.gateway import Gateway, default_pipeline

    records: List[Dict[str, object]] = []
    for scenario_name in scenarios:
        worker = AuditWorker(
            ledger,
            registry=registry,
            scenario=scenario_name,
            sp_trials=sp_trials,
            seed=seed,
        )
        stage = AuditMiddleware(
            sampler=AuditSampler(rate, seed=seed), worker=worker
        )
        gateway = Gateway(default_pipeline(registry, audit=stage))
        for instance in replay_instances(
            scenario_name, rounds=rounds, seed=seed
        ):
            for scheduler in schedulers:
                gateway.solve(instance, scheduler)
        worker.stop()
        records.extend(worker.records())
    return records


# -- summary / classification ----------------------------------------------


def _combined_mark(marks: List[str]) -> str:
    if "no" in marks:
        return "no"
    return "yes" if "yes" in marks else "n/a"


def summarize_records(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """One row per ``(scenario, scheduler)`` with combined Table-1 marks."""
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    for record in records:
        key = (str(record["scenario"]), str(record["scheduler"]))
        groups.setdefault(key, []).append(record)

    rows: List[Dict[str, object]] = []
    for (scenario, scheduler) in sorted(groups):
        group = groups[(scenario, scheduler)]
        judged = [r for r in group if r["verdict"] != "error"]
        row: Dict[str, object] = {
            "scenario": scenario,
            "scheduler": scheduler,
        }
        for prop in PROPERTY_KEYS:
            row[prop] = _combined_mark(
                [str(r["properties"][prop]) for r in judged]  # type: ignore[index]
            )
        row["audited"] = len(group)
        for verdict in ("pass", "fail", "error"):
            row[verdict] = sum(1 for r in group if r["verdict"] == verdict)
        violated = sorted(
            {str(v) for r in group for v in r["violations"]}  # type: ignore[union-attr]
        )
        row["violations"] = ",".join(violated) if violated else "-"
        rows.append(row)
    return rows


def confirmed_violations(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The ``fail``-verdict records (a violated *expected* property)."""
    return [record for record in records if record["verdict"] == "fail"]


__all__ = [
    "DEFAULT_REPLAY_SCENARIOS",
    "DEFAULT_REPLAY_SCHEDULERS",
    "UNFAIR_SCHEDULER",
    "UnfairAllocator",
    "confirmed_violations",
    "injected_unfair_scheduler",
    "replay_audit",
    "replay_instances",
    "summarize_records",
]
