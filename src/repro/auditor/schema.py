"""Validation for ``repro/audit-v1`` records — one audited response each.

The audit ledger is append-only JSONL (see
:mod:`repro.auditor.ledger`), so a malformed line written today is a
broken ``repro audit-report`` next month.  Exactly like the benchmark
ledger (:mod:`repro.benchledger.schema`), every record passes through
this module on *both* write and read, stdlib-only, with
JSON-pointer-ish error paths (``properties.SP``).

One ``repro/audit-v1`` record::

    {"schema": "repro/audit-v1",
     "created_unix": 1722300000.0,
     "scenario": "steady",               # audit stream label
     "scheduler": "oef-coop",            # canonical registry name
     "fingerprint": "9f3a…",             # audited instance content hash
     "seed": 0,                          # SP-audit seed
     "verdict": "pass" | "fail" | "error",
     "properties": {"PE": "yes", "EF": "yes", "SI": "yes",
                    "SP": "no", "optimal efficiency": "yes"},
     "violations": ["EF"],               # failed *expected* properties
     "elapsed_s": 0.012,
     "error": "..."}                     # required iff verdict == "error"
"""

from __future__ import annotations

from typing import Any, Mapping

AUDIT_SCHEMA = "repro/audit-v1"

#: The Table-1 property marks every record carries, in report order
#: (matches :meth:`repro.core.properties.PropertyReport.as_row`).
PROPERTY_KEYS = ("PE", "EF", "SI", "SP", "optimal efficiency")

#: Allowed per-property marks; "n/a" covers checks that did not run
#: (e.g. SP audits disabled for a scheduler).
PROPERTY_MARKS = ("yes", "no", "n/a")

VERDICTS = ("pass", "fail", "error")


class AuditSchemaError(ValueError):
    """A record that does not conform to ``repro/audit-v1``."""

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise AuditSchemaError(path, message)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _require_name(value: Any, path: str) -> None:
    _require(
        isinstance(value, str) and bool(value.strip()),
        path,
        f"expected a non-empty string, got {value!r}",
    )


def validate_audit_record(record: Any) -> Any:
    """Validate one ``repro/audit-v1`` record; returns it unchanged."""
    _require(
        isinstance(record, Mapping), "", f"expected an object, got {record!r}"
    )
    _require(
        record.get("schema") == AUDIT_SCHEMA,
        "schema",
        f"expected {AUDIT_SCHEMA!r}, got {record.get('schema')!r}",
    )
    _require(
        _is_number(record.get("created_unix")),
        "created_unix",
        f"expected a unix timestamp, got {record.get('created_unix')!r}",
    )
    for field in ("scenario", "scheduler", "fingerprint"):
        _require_name(record.get(field), field)
    seed = record.get("seed")
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        "seed",
        f"expected an integer seed, got {seed!r}",
    )
    verdict = record.get("verdict")
    _require(
        verdict in VERDICTS,
        "verdict",
        f"expected one of {VERDICTS}, got {verdict!r}",
    )

    properties = record.get("properties")
    _require(
        isinstance(properties, Mapping),
        "properties",
        f"expected an object, got {properties!r}",
    )
    for key in PROPERTY_KEYS:
        mark = properties.get(key)
        _require(
            mark in PROPERTY_MARKS,
            f"properties.{key}",
            f"expected one of {PROPERTY_MARKS}, got {mark!r}",
        )
    unknown = sorted(set(properties) - set(PROPERTY_KEYS))
    _require(
        not unknown,
        "properties",
        f"unknown property keys {unknown}; known: {list(PROPERTY_KEYS)}",
    )

    violations = record.get("violations")
    _require(
        isinstance(violations, list),
        "violations",
        f"expected a list, got {violations!r}",
    )
    for index, name in enumerate(violations):
        # built-in property keys or user-registered custom check names
        _require_name(name, f"violations[{index}]")
    _require(
        verdict != "fail" or bool(violations),
        "violations",
        "a 'fail' verdict must name at least one violated property",
    )

    elapsed = record.get("elapsed_s")
    _require(
        _is_number(elapsed) and elapsed >= 0,
        "elapsed_s",
        f"expected a non-negative duration, got {elapsed!r}",
    )

    error = record.get("error")
    if verdict == "error":
        _require_name(error, "error")
    else:
        _require(
            error is None,
            "error",
            f"only 'error' verdicts carry an error message, got {error!r}",
        )
    return record


__all__ = [
    "AUDIT_SCHEMA",
    "PROPERTY_KEYS",
    "PROPERTY_MARKS",
    "VERDICTS",
    "AuditSchemaError",
    "validate_audit_record",
]
