"""The append-only audit ledger: one JSONL file per audit stream.

Every audited response becomes one ``repro/audit-v1`` line under
``<root>/<scenario>.jsonl`` — the durable record ``repro audit-report``
summarizes.  The write discipline is the benchmark ledger's (the shared
:mod:`repro.jsonlio` primitives): each record is serialized to a
single line and written with one ``O_APPEND`` ``write(2)`` + fsync, so
concurrent audit workers interleave whole lines, never halves, and a
crash leaves either the full new line or nothing.  Lines are
schema-validated on both write and read
(:mod:`repro.auditor.schema`), so a corrupt line is caught with its
file and line number.

``$REPRO_AUDIT_DIR`` overrides where :meth:`AuditLedger.default`
looks; an *empty* value disables default-ledger discovery entirely
(tier-1 test isolation — see ``tests/conftest.py``).  There is no
committed default location: audits are operational telemetry, not a
repo artifact, so callers outside ``$REPRO_AUDIT_DIR`` must name a
directory explicitly (``repro serve --audit-ledger DIR``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional

from repro import jsonlio
from repro.auditor.schema import validate_audit_record

#: Environment variable naming the default audit-ledger directory.
#: Set to the empty string to disable default-ledger discovery.
AUDIT_DIR_ENV = "REPRO_AUDIT_DIR"


class AuditLedgerError(RuntimeError):
    """An audit ledger file that cannot be read (corrupt line, bad schema)."""


def _stream_filename(scenario: str) -> str:
    return jsonlio.safe_filename(scenario)


class AuditLedger:
    """Append and read ``repro/audit-v1`` records in one directory."""

    def __init__(self, root: str):
        self.root = str(root)

    @classmethod
    def default(cls) -> Optional["AuditLedger"]:
        """The ``$REPRO_AUDIT_DIR`` ledger, or ``None``.

        An empty value explicitly disables audit recording (records then
        live only in the worker's in-memory buffer).
        """
        if AUDIT_DIR_ENV in os.environ:
            value = os.environ[AUDIT_DIR_ENV]
            return cls(value) if value else None
        return None

    # -- paths -----------------------------------------------------------

    def path_for(self, scenario: str) -> str:
        return os.path.join(self.root, _stream_filename(scenario))

    def scenarios(self) -> List[str]:
        """Audit streams present, from the ``*.jsonl`` files on disk."""
        return jsonlio.list_streams(self.root)

    # -- reading ---------------------------------------------------------

    def records(self, scenario: str) -> List[Dict[str, object]]:
        """All validated records of one stream, in append order."""
        return jsonlio.read_jsonl(
            self.path_for(scenario),
            validate=validate_audit_record,
            error_cls=AuditLedgerError,
        )

    def all_records(self) -> List[Dict[str, object]]:
        records: List[Dict[str, object]] = []
        for scenario in self.scenarios():
            records.extend(self.records(scenario))
        return records

    # -- writing ---------------------------------------------------------

    def append(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Validate and atomically append one record; returns it."""
        validate_audit_record(record)
        entry = dict(record)
        jsonlio.append_jsonl(self.path_for(str(entry["scenario"])), entry)
        return entry


__all__ = ["AUDIT_DIR_ENV", "AuditLedger", "AuditLedgerError"]
