"""The append-only audit ledger: one JSONL file per audit stream.

Every audited response becomes one ``repro/audit-v1`` line under
``<root>/<scenario>.jsonl`` — the durable record ``repro audit-report``
summarizes.  The write discipline is the benchmark ledger's
(:mod:`repro.benchledger.ledger`): each record is serialized to a
single line and written with one ``O_APPEND`` ``write(2)`` + fsync, so
concurrent audit workers interleave whole lines, never halves, and a
crash leaves either the full new line or nothing.  Lines are
schema-validated on both write and read
(:mod:`repro.auditor.schema`), so a corrupt line is caught with its
file and line number.

``$REPRO_AUDIT_DIR`` overrides where :meth:`AuditLedger.default`
looks; an *empty* value disables default-ledger discovery entirely
(tier-1 test isolation — see ``tests/conftest.py``).  There is no
committed default location: audits are operational telemetry, not a
repo artifact, so callers outside ``$REPRO_AUDIT_DIR`` must name a
directory explicitly (``repro serve --audit-ledger DIR``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional

from repro.auditor.schema import AuditSchemaError, validate_audit_record

#: Environment variable naming the default audit-ledger directory.
#: Set to the empty string to disable default-ledger discovery.
AUDIT_DIR_ENV = "REPRO_AUDIT_DIR"


class AuditLedgerError(RuntimeError):
    """An audit ledger file that cannot be read (corrupt line, bad schema)."""


def _stream_filename(scenario: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in scenario
    )
    return f"{safe}.jsonl"


class AuditLedger:
    """Append and read ``repro/audit-v1`` records in one directory."""

    def __init__(self, root: str):
        self.root = str(root)

    @classmethod
    def default(cls) -> Optional["AuditLedger"]:
        """The ``$REPRO_AUDIT_DIR`` ledger, or ``None``.

        An empty value explicitly disables audit recording (records then
        live only in the worker's in-memory buffer).
        """
        if AUDIT_DIR_ENV in os.environ:
            value = os.environ[AUDIT_DIR_ENV]
            return cls(value) if value else None
        return None

    # -- paths -----------------------------------------------------------

    def path_for(self, scenario: str) -> str:
        return os.path.join(self.root, _stream_filename(scenario))

    def scenarios(self) -> List[str]:
        """Audit streams present, from the ``*.jsonl`` files on disk."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".jsonl")]
            for name in os.listdir(self.root)
            if name.endswith(".jsonl")
        )

    # -- reading ---------------------------------------------------------

    def records(self, scenario: str) -> List[Dict[str, object]]:
        """All validated records of one stream, in append order."""
        path = self.path_for(scenario)
        if not os.path.exists(path):
            return []
        records: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise AuditLedgerError(
                        f"{path}:{lineno}: not valid JSON ({exc})"
                    ) from None
                try:
                    validate_audit_record(record)
                except AuditSchemaError as exc:
                    raise AuditLedgerError(
                        f"{path}:{lineno}: {exc}"
                    ) from None
                records.append(record)
        return records

    def all_records(self) -> List[Dict[str, object]]:
        records: List[Dict[str, object]] = []
        for scenario in self.scenarios():
            records.extend(self.records(scenario))
        return records

    # -- writing ---------------------------------------------------------

    def append(self, record: Mapping[str, object]) -> Dict[str, object]:
        """Validate and atomically append one record; returns it."""
        validate_audit_record(record)
        entry = dict(record)
        os.makedirs(self.root, exist_ok=True)
        line = json.dumps(entry, sort_keys=True, default=float) + "\n"
        data = line.encode("utf-8")
        fd = os.open(
            self.path_for(str(entry["scenario"])),
            os.O_WRONLY | os.O_CREAT | os.O_APPEND,
            0o644,
        )
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        return entry


__all__ = ["AUDIT_DIR_ENV", "AuditLedger", "AuditLedgerError"]
