"""The asynchronous audit worker: full property suite off the hot path.

:class:`AuditWorker` owns a bounded queue and one daemon thread.  The
gateway's :class:`~repro.auditor.middleware.AuditMiddleware` enqueues
``(instance, scheduler, fingerprint)`` triples as responses stream by;
the worker replays each through the *complete* Table-1 property suite
(:func:`repro.core.properties.audit_allocator`), classifies the
verdict against the scheduler's expected-property contract, and
appends one ``repro/audit-v1`` record to the audit ledger.

Failure isolation is the design center (the fault-injection tests pin
it down):

* a **full queue** drops the sample (counted), it never blocks a
  request;
* an audit check that **raises** — or references a torn-down gateway —
  becomes an ``error`` verdict in the ledger, never an exception
  anywhere else;
* a check that **hangs** past ``deadline_s`` is abandoned on a daemon
  thread and recorded as an ``error`` verdict;
* a broken **ledger write** is counted and the record is still kept in
  the in-memory buffer.

Verdict parity with the synchronous audit is a tested property: the
worker audits with exactly the kwargs :meth:`audit_parameters`
reports, so ``audit_allocator(registry.create(s), instance,
**worker.audit_parameters(s))`` reproduces any ledger row bit for bit.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.auditor.ledger import AuditLedger
from repro.auditor.schema import AUDIT_SCHEMA, PROPERTY_KEYS
from repro.core.instance import ProblemInstance
from repro.core.properties import PropertyReport, audit_allocator
from repro.registry import SchedulerRegistry

#: Expected-to-hold properties per scheduler — the paper's Table 1
#: contract.  A ``"no"`` mark on an expected property is a *confirmed
#: violation* (verdict ``fail``); a ``"no"`` on anything else is
#: informational (the scheduler never promised it).  Schedulers absent
#: from this map promise everything — the conservative default that
#: makes a deliberately unfair injected scheduler fail loudly.
EXPECTED_PROPERTIES: Dict[str, Tuple[str, ...]] = {
    "gavel": ("SI",),
    "gandiva-fair": ("PE", "SI"),
    "oef-coop": ("PE", "EF", "SI", "optimal efficiency"),
    "oef-noncoop": ("PE", "SP", "optimal efficiency"),
    # non-Table-1 baselines: only the properties they actually provide
    # in this setting (verified against the seeded replay streams)
    "max-min": ("EF", "SI"),
    "drf": ("SP",),
    "nash-welfare": ("PE", "SI"),
    "efficiency-max": ("PE", "optimal efficiency"),
}

#: Greedy trading is PE only up to small residuals on random instances —
#: the same judgement call as ``experiments/table1_properties.py``.
DEFAULT_PE_TOLERANCE: Dict[str, float] = {"gandiva-fair": 0.02}

_STOP = object()


def classify_marks(
    scheduler: str,
    marks: Dict[str, str],
    expected: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> Tuple[str, List[str]]:
    """``(verdict, violations)`` for one scheduler's property marks.

    ``marks`` maps property keys to ``"yes"``/``"no"``/``"n/a"``.
    Violations are the *expected* properties marked ``"no"``.
    """
    table = EXPECTED_PROPERTIES if expected is None else expected
    promised = table.get(scheduler, PROPERTY_KEYS)
    violations = [
        key for key in PROPERTY_KEYS
        if key in promised and marks.get(key) == "no"
    ]
    return ("fail" if violations else "pass"), violations


class AuditWorker:
    """One daemon thread draining sampled responses into audit records."""

    def __init__(
        self,
        ledger: Optional[AuditLedger] = None,
        *,
        registry: Optional[SchedulerRegistry] = None,
        scenario: str = "live",
        sp_trials: int = 2,
        seed: int = 0,
        max_queue: int = 256,
        deadline_s: Optional[float] = None,
        audit_fn: Optional[
            Callable[[ProblemInstance, str], PropertyReport]
        ] = None,
        pe_tolerance: Optional[Dict[str, float]] = None,
        max_records: int = 4096,
    ):
        if registry is None:
            from repro.registry import REGISTRY

            registry = REGISTRY
        self.ledger = ledger
        self.registry = registry
        self.scenario = str(scenario)
        self.sp_trials = int(sp_trials)
        self.seed = int(seed)
        self.deadline_s = deadline_s
        self.audit_fn = audit_fn
        self.pe_tolerance = dict(
            DEFAULT_PE_TOLERANCE if pe_tolerance is None else pe_tolerance
        )
        self._queue: "queue.Queue" = queue.Queue(maxsize=int(max_queue))
        self._records: deque = deque(maxlen=int(max_records))
        self._checks: List[Tuple[str, Callable]] = []
        self._seen: set = set()
        self._lock = threading.Lock()
        self._closed = False
        self._counts = {
            "enqueued": 0,
            "audited": 0,
            "passed": 0,
            "failed": 0,
            "errors": 0,
            "dropped": 0,
            "duplicates": 0,
            "ledger_errors": 0,
        }
        self._thread = threading.Thread(
            target=self._run, name="audit-worker", daemon=True
        )
        self._thread.start()

    # -- audit parameters (the sync/async parity contract) ---------------

    def audit_parameters(self, scheduler: str) -> Dict[str, object]:
        """The exact ``audit_allocator`` kwargs this worker audits with.

        Pulled from the scheduler's registered audit defaults
        (``pe_within``, ``efficiency_constraint``) plus this worker's
        ``sp_trials``/``seed`` and per-scheduler PE tolerance — so a
        synchronous ``audit_allocator(registry.create(name), instance,
        **worker.audit_parameters(name))`` reproduces the worker's
        verdict exactly.
        """
        info = self.registry.info(scheduler)
        return {
            "efficiency_constraint": info.efficiency_constraint,
            "sp_trials": self.sp_trials,
            "seed": self.seed,
            "pe_within": info.pe_within,
            "pe_tolerance": self.pe_tolerance.get(info.name, 1e-5),
        }

    def add_check(self, name: str, fn: Callable) -> None:
        """Register a custom check ``fn(allocator, instance) -> bool``.

        A falsy return records ``name`` as a violation (verdict
        ``fail``); a raise becomes an ``error`` verdict.  Checks run on
        the worker thread under the same deadline as the built-in suite.
        """
        self._checks.append((str(name), fn))

    # -- hot-path entry points -------------------------------------------

    def submit(
        self,
        instance: ProblemInstance,
        scheduler: str,
        fingerprint: str,
    ) -> bool:
        """Non-blocking enqueue; ``False`` when dropped or duplicate."""
        key = (fingerprint, scheduler)
        with self._lock:
            if self._closed:
                self._counts["dropped"] += 1
                return False
            if key in self._seen:
                self._counts["duplicates"] += 1
                return False
            self._seen.add(key)
        try:
            self._queue.put_nowait((instance, scheduler, fingerprint))
        except queue.Full:
            with self._lock:
                self._counts["dropped"] += 1
                self._seen.discard(key)
            return False
        with self._lock:
            self._counts["enqueued"] += 1
        return True

    # -- worker side ------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                self._audit_one(*item)
            finally:
                self._queue.task_done()

    def _with_deadline(self, fn: Callable[[], PropertyReport]):
        if self.deadline_s is None:
            return fn()
        outcome: Dict[str, object] = {}

        def target():
            try:
                outcome["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - reported as verdict
                outcome["exc"] = exc

        runner = threading.Thread(target=target, daemon=True)
        runner.start()
        runner.join(self.deadline_s)
        if runner.is_alive():
            raise TimeoutError(
                f"audit exceeded its {self.deadline_s}s deadline"
            )
        if "exc" in outcome:
            raise outcome["exc"]  # type: ignore[misc]
        return outcome["value"]

    def _audit_checks(
        self, instance: ProblemInstance, scheduler: str
    ) -> Tuple[Dict[str, str], List[str]]:
        """Run the full suite + custom checks; ``(marks, violations)``."""
        if self.audit_fn is not None:
            report = self.audit_fn(instance, scheduler)
        else:
            report = audit_allocator(
                self.registry.create(scheduler),
                instance,
                **self.audit_parameters(scheduler),
            )
        row = report.as_row()
        marks = {key: str(row[key]) for key in PROPERTY_KEYS}
        _, violations = classify_marks(scheduler, marks)
        for name, fn in self._checks:
            if not fn(self.registry.create(scheduler), instance):
                violations.append(name)
        return marks, violations

    def _audit_one(
        self, instance: ProblemInstance, scheduler: str, fingerprint: str
    ) -> None:
        start = time.perf_counter()
        record: Dict[str, object] = {
            "schema": AUDIT_SCHEMA,
            "created_unix": time.time(),
            "scenario": self.scenario,
            "scheduler": scheduler,
            "fingerprint": fingerprint,
            "seed": self.seed,
        }
        try:
            canonical = self.registry.resolve(scheduler)
            record["scheduler"] = canonical
            marks, violations = self._with_deadline(
                lambda: self._audit_checks(instance, canonical)
            )
            record.update(
                verdict="fail" if violations else "pass",
                properties=marks,
                violations=violations,
            )
        except BaseException as exc:  # noqa: BLE001 - audits never propagate
            record.update(
                verdict="error",
                properties={key: "n/a" for key in PROPERTY_KEYS},
                violations=[],
                error=f"{type(exc).__name__}: {exc}",
            )
        record["elapsed_s"] = time.perf_counter() - start
        with self._lock:
            self._counts["audited"] += 1
            verdict = str(record["verdict"])
            self._counts[
                {"pass": "passed", "fail": "failed", "error": "errors"}[verdict]
            ] += 1
            self._records.append(record)
        if self.ledger is not None:
            try:
                self.ledger.append(record)
            except Exception:  # noqa: BLE001 - keep auditing on disk errors
                with self._lock:
                    self._counts["ledger_errors"] += 1

    # -- lifecycle / introspection ----------------------------------------

    def drain(self, timeout: Optional[float] = 10.0) -> bool:
        """Block until every enqueued audit finished; ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._queue.unfinished_tasks:
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.005)
        return True

    def stop(self, timeout: Optional[float] = 10.0) -> bool:
        """Drain, then stop the worker thread.  Idempotent."""
        with self._lock:
            if self._closed:
                return not self._thread.is_alive()
            self._closed = True
        flushed = self.drain(timeout)
        self._queue.put(_STOP)
        self._thread.join(timeout)
        return flushed and not self._thread.is_alive()

    def records(self) -> List[Dict[str, object]]:
        """A copy of the in-memory record buffer, oldest first."""
        with self._lock:
            return [dict(record) for record in self._records]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            counts = dict(self._counts)
        counts["pending"] = int(self._queue.unfinished_tasks)
        counts["scenario"] = self.scenario
        return counts

    def __repr__(self) -> str:
        return (
            f"AuditWorker(scenario={self.scenario!r}, "
            f"sp_trials={self.sp_trials}, seed={self.seed})"
        )


__all__ = [
    "DEFAULT_PE_TOLERANCE",
    "EXPECTED_PROPERTIES",
    "AuditWorker",
    "classify_marks",
]
