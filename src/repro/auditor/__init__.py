"""Continuous fairness auditing for the gateway serving layer.

The paper's Table-1 properties (Pareto efficiency, envy-freeness,
sharing incentive, strategyproofness) used to be checked only offline,
in ``experiments/table1_properties.py``.  This package turns them into
an operational guarantee of the serving layer:

* :class:`~repro.auditor.middleware.AuditMiddleware` — a pure-observer
  gateway stage; a seeded hash :class:`~repro.auditor.sampler.AuditSampler`
  picks responses off the hot path at near-zero cost;
* :class:`~repro.auditor.worker.AuditWorker` — an asynchronous daemon
  running the full :func:`repro.core.properties.audit_allocator` suite
  per sampled response, classifying verdicts against each scheduler's
  expected-property contract;
* :class:`~repro.auditor.ledger.AuditLedger` — schema-validated
  (``repro/audit-v1``) append-only JSONL, one stream per scenario;
* :mod:`repro.auditor.report` — seeded scenario replays and the
  per-scheduler/per-scenario summary behind ``repro audit-report``
  (non-zero exit on any confirmed violation).

See ``docs/auditing.md`` for sampler semantics, the ledger layout, the
report workflow, and how to register a custom check.
"""

from repro.auditor.ledger import AUDIT_DIR_ENV, AuditLedger, AuditLedgerError
from repro.auditor.middleware import AuditMiddleware
from repro.auditor.report import (
    DEFAULT_REPLAY_SCENARIOS,
    DEFAULT_REPLAY_SCHEDULERS,
    UNFAIR_SCHEDULER,
    UnfairAllocator,
    confirmed_violations,
    injected_unfair_scheduler,
    replay_audit,
    replay_instances,
    summarize_records,
)
from repro.auditor.sampler import AuditSampler
from repro.auditor.schema import (
    AUDIT_SCHEMA,
    PROPERTY_KEYS,
    AuditSchemaError,
    validate_audit_record,
)
from repro.auditor.worker import (
    DEFAULT_PE_TOLERANCE,
    EXPECTED_PROPERTIES,
    AuditWorker,
    classify_marks,
)

__all__ = [
    "AUDIT_DIR_ENV",
    "AUDIT_SCHEMA",
    "DEFAULT_PE_TOLERANCE",
    "DEFAULT_REPLAY_SCENARIOS",
    "DEFAULT_REPLAY_SCHEDULERS",
    "EXPECTED_PROPERTIES",
    "PROPERTY_KEYS",
    "UNFAIR_SCHEDULER",
    "AuditLedger",
    "AuditLedgerError",
    "AuditMiddleware",
    "AuditSampler",
    "AuditSchemaError",
    "AuditWorker",
    "UnfairAllocator",
    "classify_marks",
    "confirmed_violations",
    "injected_unfair_scheduler",
    "replay_audit",
    "replay_instances",
    "summarize_records",
    "validate_audit_record",
]
