"""Decorator-based scheduler registry: self-describing allocators.

Every allocator class registers itself with a :class:`SchedulerInfo`
record — canonical name, aliases, family, per-scheduler audit defaults
(``pe_within``, ``efficiency_constraint``) and capability flags — so
entry points (CLI, :class:`~repro.service.SchedulingService`, cluster
simulator, experiments) look schedulers up instead of hand-constructing
them.  Adding a new scheduler is one decorator::

    from repro.core.base import Allocator
    from repro.registry import register_scheduler

    @register_scheduler(aliases=("my-alias",), family="baseline")
    class MyScheduler(Allocator):
        name = "my-scheduler"
        ...

and every consumer — ``repro list-schedulers``, ``repro compare``, the
service facade, the simulator — picks it up without modification.
Lookup is by canonical name or any alias::

    from repro.registry import create_scheduler, scheduler_info

    allocator = create_scheduler("cooperative")      # alias of "oef-coop"
    info = scheduler_info("gavel")
    info.max_isolation                               # "process"

The default registry lazily imports the built-in allocator modules on
first lookup, so ``import repro.registry`` stays cheap and free of
import cycles.

Capability flags and concurrency
--------------------------------
``SchedulerInfo`` carries two flags the parallel engine reads when it
plans a batch (:meth:`repro.gateway.Gateway.solve_batch`; the legacy
``SchedulingService.solve_batch`` delegates to it):

* ``parallel_safe`` — instances may solve concurrently from several
  *threads* of one process.  Set it to ``False`` for allocators with
  shared mutable module/class state; their work then runs serially (or
  in isolated processes, where thread-safety is irrelevant).
* ``picklable`` — instances/options survive a process boundary, so the
  work may ship to a *process* pool.  ``max_isolation`` derives the
  strongest backend from the two flags.

Registration itself is an import-time, single-threaded affair (module
import holds the interpreter's import lock); lookups afterwards are
read-only and safe from any thread.  ``create()`` constructs a fresh
allocator per call, so callers never share allocator instances unless
they choose to.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import (
    RegistrationError,
    UnknownSchedulerError,
    unknown_name_message,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.base import Allocator

#: Modules whose import registers every built-in allocator.
_BUILTIN_MODULES = (
    "repro.core.noncooperative",
    "repro.core.cooperative",
    "repro.baselines",
)


@dataclass(frozen=True)
class SchedulerInfo:
    """Everything an entry point needs to know about one scheduler.

    ``pe_within`` and ``efficiency_constraint`` are the audit defaults the
    paper's Table-1 checks use for this scheduler (see
    :func:`repro.core.properties.audit_allocator`); callers may still
    override them per call.
    """

    name: str
    factory: Callable[..., "Allocator"]
    family: str = "baseline"
    aliases: Tuple[str, ...] = ()
    description: str = ""
    #: Pareto-improvement domain for the PE audit (None = unconstrained).
    pe_within: Optional[str] = None
    #: Constraint set the optimal-efficiency audit compares against.
    efficiency_constraint: str = "envy_free"
    #: Understands tenant weights / multiple job types (via WeightedOEF).
    supports_weights: bool = False
    #: Has a job-level (elastic) variant (via JobLevelOEF).
    supports_job_level: bool = False
    #: Safe to solve concurrently from multiple threads of one process.
    #: Irrelevant under a process pool, where every worker is an isolated
    #: single-threaded process.
    parallel_safe: bool = True
    #: Instances/options survive a process boundary (pickle), so batch
    #: solves may ship this scheduler's work to a process pool.  Set to
    #: False for schedulers with unpicklable state; the service then
    #: degrades to threads (or serial when also not ``parallel_safe``).
    picklable: bool = True
    #: Supports verified warm-started re-solves: ``allocate_with_state``
    #: threads a prior :class:`~repro.solver.warm.WarmStartState` into
    #: its LP and returns a fresh one.  The gateway's structural warm
    #: tier (:class:`repro.gateway.middleware.WarmStartMiddleware`,
    #: driving the legacy ``SchedulingService.resolve``) only engages
    #: for schedulers with this flag set.
    warm_startable: bool = False

    @property
    def max_isolation(self) -> str:
        """Strongest execution backend this scheduler supports.

        Process pools only need picklability (workers are isolated, so
        thread-safety never enters into it); thread pools additionally
        need ``parallel_safe``.
        """
        if self.picklable:
            return "process"
        return "thread" if self.parallel_safe else "serial"

    def as_row(self) -> Dict[str, object]:
        """One printable table row for ``repro list-schedulers``."""
        return {
            "name": self.name,
            "family": self.family,
            "aliases": ", ".join(self.aliases) or "-",
            "pe domain": self.pe_within or "-",
            "efficiency vs": self.efficiency_constraint,
            "weights": "yes" if self.supports_weights else "no",
            "job-level": "yes" if self.supports_job_level else "no",
            "parallel": self.max_isolation,
            "warm": "yes" if self.warm_startable else "no",
            "description": self.description,
        }


class SchedulerRegistry:
    """Name -> :class:`SchedulerInfo` mapping with alias resolution."""

    def __init__(self, load_builtins: bool = False):
        self._infos: Dict[str, SchedulerInfo] = {}
        self._aliases: Dict[str, str] = {}
        self._load_builtins = load_builtins
        self._loaded = False

    # -- registration ------------------------------------------------------
    def register(self, info: SchedulerInfo) -> None:
        if info.name in self._infos:
            raise RegistrationError(f"scheduler {info.name!r} is already registered")
        for alias in (info.name, *info.aliases):
            owner = self._aliases.get(alias)
            if owner is not None and owner != info.name:
                raise RegistrationError(
                    f"alias {alias!r} of scheduler {info.name!r} is already "
                    f"taken by {owner!r}"
                )
        self._infos[info.name] = info
        self._aliases[info.name] = info.name
        for alias in info.aliases:
            self._aliases[alias] = info.name

    def unregister(self, name: str) -> None:
        """Remove one scheduler (primarily for tests)."""
        canonical = self.resolve(name)
        info = self._infos.pop(canonical)
        for alias in (info.name, *info.aliases):
            self._aliases.pop(alias, None)

    # -- lookup ------------------------------------------------------------
    def resolve(self, name: str) -> str:
        """Canonical name for ``name`` (which may be an alias)."""
        self._ensure_builtins()
        try:
            return self._aliases[name]
        except KeyError:
            raise self._unknown(name) from None

    def info(self, name: str) -> SchedulerInfo:
        return self._infos[self.resolve(name)]

    def create(self, name: str, **options) -> "Allocator":
        """Instantiate the named scheduler, forwarding constructor options."""
        return self.info(name).factory(**options)

    def names(self) -> List[str]:
        """Sorted canonical scheduler names."""
        self._ensure_builtins()
        return sorted(self._infos)

    def rows(self) -> List[Dict[str, object]]:
        """Printable metadata rows, one per registered scheduler."""
        return [self._infos[name].as_row() for name in self.names()]

    def __contains__(self, name: str) -> bool:
        self._ensure_builtins()
        return name in self._aliases

    def __iter__(self) -> Iterator[SchedulerInfo]:
        return iter(self._infos[name] for name in self.names())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._infos)

    # -- internals ---------------------------------------------------------
    def _ensure_builtins(self) -> None:
        if self._loaded or not self._load_builtins:
            return
        # set the flag first to guard against recursive lookups while the
        # builtin modules import, but reset it on failure so the real
        # ImportError resurfaces on retry instead of a silently empty
        # registry claiming every scheduler is unknown
        self._loaded = True
        try:
            for module in _BUILTIN_MODULES:
                importlib.import_module(module)
        except BaseException:
            self._loaded = False
            raise

    def _unknown(self, name: str) -> UnknownSchedulerError:
        return UnknownSchedulerError(
            unknown_name_message(
                "scheduler", name, self._aliases, choices=self.names()
            )
        )


#: The process-wide default registry every entry point shares.
REGISTRY = SchedulerRegistry(load_builtins=True)


def register_scheduler(
    cls: Optional[type] = None,
    *,
    name: Optional[str] = None,
    aliases: Tuple[str, ...] = (),
    family: str = "baseline",
    description: Optional[str] = None,
    pe_within: Optional[str] = None,
    efficiency_constraint: str = "envy_free",
    supports_weights: bool = False,
    supports_job_level: bool = False,
    parallel_safe: bool = True,
    picklable: bool = True,
    warm_startable: bool = False,
    registry: Optional[SchedulerRegistry] = None,
) -> Callable[[type], type]:
    """Class decorator: register an :class:`Allocator` subclass.

    The canonical name defaults to the class's ``name`` attribute and the
    description to the first line of its docstring.  The created
    :class:`SchedulerInfo` is also attached to the class as
    ``cls.metadata`` (the hook declared on ``Allocator``).
    """

    def wrap(klass: type) -> type:
        canonical = name or getattr(klass, "name", None)
        if not canonical or canonical == "allocator":
            raise RegistrationError(
                f"{klass.__name__} needs a distinctive 'name' attribute "
                "(or an explicit name=...) to register"
            )
        if getattr(klass, "name", "allocator") == "allocator":
            klass.name = canonical
        doc = (klass.__doc__ or "").strip().splitlines()
        info = SchedulerInfo(
            name=canonical,
            factory=klass,
            family=family,
            aliases=tuple(aliases),
            description=description if description is not None else (doc[0] if doc else ""),
            pe_within=pe_within,
            efficiency_constraint=efficiency_constraint,
            supports_weights=supports_weights,
            supports_job_level=supports_job_level,
            parallel_safe=parallel_safe,
            picklable=picklable,
            warm_startable=warm_startable,
        )
        # explicit "is not None": an empty registry is falsy via __len__
        target = registry if registry is not None else REGISTRY
        target.register(info)
        klass.metadata = info
        return klass

    if cls is not None:  # bare @register_scheduler usage
        return wrap(cls)
    return wrap


# -- module-level conveniences over the default registry --------------------
def create_scheduler(name: str, **options) -> "Allocator":
    """Instantiate a scheduler from the default registry by name or alias."""
    return REGISTRY.create(name, **options)


def scheduler_info(name: str) -> SchedulerInfo:
    """Metadata for one scheduler from the default registry."""
    return REGISTRY.info(name)


def scheduler_names() -> List[str]:
    """Sorted canonical names of every registered scheduler."""
    return REGISTRY.names()


def resolve_scheduler_name(name: str) -> str:
    """Canonical name for ``name`` in the default registry."""
    return REGISTRY.resolve(name)


def registry_rows() -> List[Dict[str, object]]:
    """Printable metadata rows from the default registry."""
    return REGISTRY.rows()
