"""Shared append-only JSONL primitives for the repo's ledgers and sinks.

Three subsystems keep durable state as schema-validated JSONL streams:
the benchmark ledger (:mod:`repro.benchledger.ledger`), the audit
ledger (:mod:`repro.auditor.ledger`), and the fleet metrics sink
(:mod:`repro.fleet.metrics`).  They used to each carry a private copy
of the same three helpers; this module is the single home for them.

The write discipline is shared by all three: each entry is serialized
to one line and written with a single ``O_APPEND`` ``write(2)``
followed by ``fsync``, so concurrent appenders interleave whole lines,
never halves, and a crash leaves either the full new line or nothing.
:func:`append_jsonl_lines` extends the same guarantee to a batch —
POSIX ``O_APPEND`` writes are atomic per ``write(2)`` call, so a batch
lands as one contiguous block of whole lines and costs one fsync
instead of one per line (the fleet sink's per-window flush relies on
this to keep streaming cheap).

Reads validate every line and report failures with ``{path}:{lineno}``
so a corrupt or hand-mangled line is caught where it lives, not
downstream in a compare or aggregate.
"""

from __future__ import annotations

import json
import os
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Type,
)


class JsonlError(RuntimeError):
    """A JSONL file that cannot be read (corrupt line, bad schema)."""


def safe_filename(name: str, suffix: str = ".jsonl") -> str:
    """Map an arbitrary stream name onto a safe ``<name>.jsonl`` filename.

    Alphanumerics plus ``-``, ``_``, and ``.`` pass through; everything
    else becomes ``_``.  This is the naming rule every ledger directory
    in the repo uses, so stream names round-trip through
    ``os.listdir`` discovery.
    """
    safe = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    )
    return f"{safe}{suffix}"


def dump_line(entry: Mapping[str, object]) -> bytes:
    """One canonical JSONL line: sorted keys, numpy scalars as floats."""
    return (
        json.dumps(entry, sort_keys=True, default=float) + "\n"
    ).encode("utf-8")


def _append_bytes(path: str, data: bytes) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)


def append_jsonl(path: str, entry: Mapping[str, object]) -> None:
    """Atomically append one entry: one line, one write, one fsync."""
    _append_bytes(path, dump_line(entry))


def append_jsonl_lines(
    path: str, entries: Iterable[Mapping[str, object]]
) -> int:
    """Append a batch of entries with a single write + fsync.

    Returns the number of entries written.  An empty batch touches
    nothing (no file is created).
    """
    lines = [dump_line(entry) for entry in entries]
    if not lines:
        return 0
    _append_bytes(path, b"".join(lines))
    return len(lines)


def read_jsonl(
    path: str,
    validate: Optional[Callable[[Mapping[str, object]], None]] = None,
    error_cls: Type[Exception] = JsonlError,
) -> List[Dict[str, object]]:
    """All validated entries of one stream, in append order.

    A missing file reads as the empty stream.  Blank lines are skipped
    (a crash mid-write can leave a trailing newline).  A line that is
    not valid JSON, or that ``validate`` rejects, raises ``error_cls``
    with the offending ``{path}:{lineno}`` so the bad line can be found
    and excised by hand.
    """
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise error_cls(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if validate is not None:
                try:
                    validate(entry)
                except Exception as exc:
                    raise error_cls(f"{path}:{lineno}: {exc}") from None
            entries.append(entry)
    return entries


def list_streams(root: str, suffix: str = ".jsonl") -> List[str]:
    """Stream names present in a ledger directory, sorted."""
    if not os.path.isdir(root):
        return []
    return sorted(
        name[: -len(suffix)]
        for name in os.listdir(root)
        if name.endswith(suffix)
    )


__all__ = [
    "JsonlError",
    "append_jsonl",
    "append_jsonl_lines",
    "dump_line",
    "list_streams",
    "read_jsonl",
    "safe_filename",
]
