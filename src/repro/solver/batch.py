"""Batched LP solving: many independent programs, one vectorized solve.

``Gateway.solve_batch`` fans independent small LPs out to worker lanes,
but each lane still pays a full scipy round-trip per program.  Independent
LPs compose exactly: stacking them block-diagonally yields one larger LP
whose optimum restricts to each block's optimum.  One HiGHS call on the
composed system amortises model construction and presolve across the
whole batch — the win the paper's Fig. 10(a) regime (many small per-round
programs) cares about.

Correctness contract (the same one warm starting obeys): a batched path
must never change an answer.  A block with a *unique* optimum provably
receives the same point in the composed solve as it would solo; blocks
where uniqueness cannot be certified are re-solved solo.  Concretely, the
composed solve's per-block KKT certificate (point + row duals, which
HiGHS reports anyway) is verified through
:func:`repro.solver.warm.try_warm_solve` — exactly the verified-or-fall-
back-cold machinery — so every returned solution is either certified
equal to the solo answer or literally produced by a solo solve.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import SolverError
from repro.solver.problem import StandardForm, solve_form
from repro.solver.result import Solution, SolveStats
from repro.solver.warm import WarmStartState, form_signature, try_warm_solve


def solve_forms(
    forms: Sequence[StandardForm], backend: str = "auto"
) -> List[Solution]:
    """Solve independent standard forms in one composed pass.

    Returns one :class:`Solution` per form, in order, equal (certified,
    or by actually running solo) to what ``solve_form(form, backend)``
    would return.  Any failure of the composed solve — including one
    infeasible/unbounded member making the whole composition infeasible —
    falls back to solo solves, which also reproduces the serial path's
    exception behaviour.
    """
    forms = list(forms)
    if not forms:
        return []
    if len(forms) == 1 or backend == "simplex":
        # nothing to amortise / the self-contained backend gains nothing
        # from composition
        return [solve_form(form, backend=backend) for form in forms]
    try:
        return _solve_block_diagonal(forms, backend)
    except SolverError:
        return [solve_form(form, backend=backend) for form in forms]


def _stack(blocks, widths):
    """Block-diagonal composition of per-form row systems (None-aware)."""
    total_rows = sum(0 if block is None else block.shape[0] for block in blocks)
    if total_rows == 0:
        return None
    pieces = []
    for block, width in zip(blocks, widths):
        if block is None:
            pieces.append(sparse.csr_matrix((0, width)))
        elif sparse.issparse(block):
            pieces.append(block.tocsr())
        else:
            pieces.append(sparse.csr_matrix(np.atleast_2d(block)))
    return sparse.block_diag(pieces, format="csr")


def _solve_block_diagonal(
    forms: List[StandardForm], backend: str
) -> List[Solution]:
    widths = [form.num_variables for form in forms]
    var_offsets = np.concatenate([[0], np.cumsum(widths)])
    composed = StandardForm(
        c=np.concatenate([form.c for form in forms]),
        a_ub=_stack([form.a_ub for form in forms], widths),
        b_ub=_concat([form.b_ub for form in forms]),
        a_eq=_stack([form.a_eq for form in forms], widths),
        b_eq=_concat([form.b_eq for form in forms]),
        bounds=[bound for form in forms for bound in form.bounds],
        maximise=False,  # every form.c is already in minimisation convention
        offset=0.0,
    )
    start = time.perf_counter()
    composed_solution = solve_form(composed, backend=backend)
    elapsed = time.perf_counter() - start
    state = composed_solution.warm_state

    ub_offsets = _row_offsets([form.a_ub for form in forms])
    eq_offsets = _row_offsets([form.a_eq for form in forms])
    solutions: List[Solution] = []
    for index, form in enumerate(forms):
        values = composed_solution.values[
            var_offsets[index] : var_offsets[index + 1]
        ]
        block_state = _block_state(form, values, state, index, ub_offsets, eq_offsets)
        verified = (
            None if block_state is None else try_warm_solve(form, block_state)
        )
        if verified is None:
            # uniqueness not certifiable from the composed certificate:
            # this block's serial answer could differ, so produce it solo
            solutions.append(solve_form(form, backend=backend))
            continue
        raw = float(form.c @ verified)
        rows = 0 if form.a_ub is None else int(form.a_ub.shape[0])
        rows += 0 if form.a_eq is None else int(form.a_eq.shape[0])
        solutions.append(
            Solution(
                values=verified,
                objective=(-raw if form.maximise else raw) + form.offset,
                stats=SolveStats(
                    backend=composed_solution.stats.backend,
                    solve_seconds=elapsed / len(forms),
                    num_variables=form.num_variables,
                    num_constraints=rows,
                    warm_start_used=False,
                ),
                warm_state=block_state,
            )
        )
    return solutions


def _concat(arrays) -> Optional[np.ndarray]:
    present = [np.asarray(array, dtype=float) for array in arrays if array is not None]
    if not present:
        return None
    return np.concatenate(present)


def _row_offsets(blocks) -> np.ndarray:
    counts = [0 if block is None else int(block.shape[0]) for block in blocks]
    return np.concatenate([[0], np.cumsum(counts)])


def _block_state(
    form: StandardForm,
    values: np.ndarray,
    state: Optional[WarmStartState],
    index: int,
    ub_offsets: np.ndarray,
    eq_offsets: np.ndarray,
) -> Optional[WarmStartState]:
    """This block's KKT certificate sliced out of the composed solve's."""
    if state is None:
        return None
    dual_ub = None
    if form.a_ub is not None:
        if state.dual_ub is None:
            return None
        dual_ub = state.dual_ub[ub_offsets[index] : ub_offsets[index + 1]]
    dual_eq = None
    if form.a_eq is not None:
        if state.dual_eq is None:
            return None
        dual_eq = state.dual_eq[eq_offsets[index] : eq_offsets[index + 1]]
    return WarmStartState(
        signature=form_signature(form),
        primal=np.asarray(values, dtype=float).copy(),
        dual_ub=dual_ub,
        dual_eq=dual_eq,
    )


__all__ = ["solve_forms"]
