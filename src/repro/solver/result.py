"""Solution objects returned by :meth:`LinearProgram.solve`."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.solver.expression import LinExpr, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.solver.warm import WarmStartState


@dataclass(frozen=True)
class SolveStats:
    """Bookkeeping about one solve, used by the overhead experiments."""

    backend: str
    solve_seconds: float
    num_variables: int
    num_constraints: int
    #: True when the answer came from a verified warm start instead of a
    #: fresh backend run (see :mod:`repro.solver.warm`).
    warm_start_used: bool = False


@dataclass(frozen=True)
class Solution:
    """An optimal point plus its objective value.

    ``value`` reads back scalars, variables, expressions, or object arrays
    of variables (returning a float ndarray of the same shape).
    """

    values: np.ndarray
    objective: float
    stats: SolveStats
    #: Reusable warm-start evidence for a structurally identical re-solve
    #: (``None`` when the backend produced no certificate).
    warm_state: Optional["WarmStartState"] = None

    def value(self, item):
        if isinstance(item, Variable):
            return float(self.values[item.index])
        if isinstance(item, LinExpr):
            total = item.constant
            for index, coeff in item.coeffs.items():
                total += coeff * self.values[index]
            return float(total)
        if isinstance(item, np.ndarray) and item.dtype == object:
            out = np.empty(item.shape, dtype=float)
            for index in np.ndindex(*item.shape):
                out[index] = self.value(item[index])
            return out
        raise TypeError(f"cannot evaluate {type(item).__name__} against a solution")
