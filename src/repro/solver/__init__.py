"""A small linear-programming substrate.

The OEF paper implements its fair-share evaluator with ``cvxpy`` + ECOS.
Neither is available offline, so this package provides the same ergonomics
from scratch:

* an expression layer (:mod:`repro.solver.expression`) with scalar
  :class:`~repro.solver.expression.Variable` handles and affine
  :class:`~repro.solver.expression.LinExpr` algebra,
* a model object (:class:`~repro.solver.problem.LinearProgram`) that collects
  constraints and an objective and compiles them to matrix standard form,
* two interchangeable backends: scipy's HiGHS
  (:mod:`repro.solver.scipy_backend`) for speed, and a from-scratch
  two-phase dense simplex (:mod:`repro.solver.simplex`) used to cross-check
  results and to keep the repository self-contained.

Typical usage::

    lp = LinearProgram("demo")
    x = lp.new_variable_array("x", (2, 2))
    lp.add_constraint(x[0, 0] + x[1, 0] <= 1.0)
    lp.set_objective(2.0 * x[0, 0] + x[1, 1], sense="max")
    solution = lp.solve()
    solution.value(x[0, 0])
"""

from repro.solver.batch import solve_forms
from repro.solver.expression import LinExpr, Variable, dot, lin_sum
from repro.solver.formcache import FORM_CACHE, FormCache, fingerprint_arrays
from repro.solver.incremental import IncrementalLP, incremental_available
from repro.solver.problem import Constraint, LinearProgram, StandardForm, solve_form
from repro.solver.result import Solution, SolveStats
from repro.solver.scipy_backend import ScipyBackend
from repro.solver.simplex import SimplexBackend, standardise_form
from repro.solver.warm import WarmStartState, form_signature, try_warm_solve

__all__ = [
    "Constraint",
    "FORM_CACHE",
    "FormCache",
    "IncrementalLP",
    "LinExpr",
    "LinearProgram",
    "ScipyBackend",
    "SimplexBackend",
    "Solution",
    "SolveStats",
    "StandardForm",
    "Variable",
    "WarmStartState",
    "dot",
    "fingerprint_arrays",
    "form_signature",
    "incremental_available",
    "lin_sum",
    "solve_form",
    "solve_forms",
    "standardise_form",
    "try_warm_solve",
]
