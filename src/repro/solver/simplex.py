"""A from-scratch sparse revised-simplex LP backend.

This backend keeps the repository self-contained (the paper's artifact uses
ECOS through cvxpy; we cross-check scipy's HiGHS against this
implementation in the test suite).  The solve is a classic two-phase
simplex, but run *revised* over sparse matrices instead of on a dense
tableau:

1. Standardise: shift finite lower bounds to zero, split free variables
   into positive/negative parts, turn finite upper bounds into extra rows,
   add slack variables for all inequalities — assembled as one vectorized
   ``scipy.sparse`` block composition (no Python-level row loops).
2. Phase 1: start from the all-artificial basis and minimise the sum of
   artificials to find a basic feasible solution (Bland's rule, so it
   terminates).
3. Phase 2: minimise the real objective from that basis.

The working state is a *factorised basis*: an LU factorisation
(``scipy.sparse.linalg.splu``) of a recent basis matrix plus a short
product-form chain of eta updates, refreshed incrementally on every pivot
and refactorised periodically.  Each iteration costs one BTRAN (pricing),
one sparse mat-vec (reduced costs), and one FTRAN (pivot column) — never
an O(rows x cols) tableau sweep.  Pricing and the ratio test replicate
the classic tableau rules exactly (Bland's smallest-index entering rule,
the same leaving tie-break on basis indices), so the pivot sequence — and
therefore the answer and the optimal basis — match the dense tableau this
module used to run.  The dense tableau is retained as
:meth:`SimplexBackend._two_phase_dense`, the automatic fallback should
the factorised path hit numerical trouble on a small program.

Warm starting: ``solve(form, warm_start=prior_state)`` accepts the
:class:`~repro.solver.warm.WarmStartState` of a structurally identical
prior program.  The prior optimal basis is re-verified against the new
numbers (feasible + strictly optimal, hence unique — see
:mod:`repro.solver.warm`); on success the solution drops out of one
``(m, m)`` solve instead of the full two-phase run, and on any doubt the
backend silently falls back to the cold path, so warm starts can never
change an answer.  ``solve_with_state`` additionally returns the state of
*this* solve for the next round to reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.solver.problem import StandardForm
from repro.solver.warm import (
    WarmStartState,
    form_signature,
    refresh_state,
    try_warm_solve,
)

_TOL = 1e-9

#: Phase-1 feasibility verdict threshold.  Deliberately looser than the
#: per-pivot ``_TOL``: the phase-1 objective is the *sum* of up to ``m``
#: artificial variables, each carrying rounding accumulated over the whole
#: pivot sequence at the scale of ``|b|``, so residuals of order
#: ``m * eps * scale`` are routine for feasible programs.  Declaring
#: infeasibility at ``_TOL`` would misclassify those; ``1e-7`` keeps two
#: orders of margin over that noise while still catching genuinely
#: infeasible programs (whose phase-1 optimum is bounded away from zero).
_PHASE1_TOL = 1e-7

#: Rebuild the basis LU factorisation after this many eta updates (bounds
#: both the per-solve memory and the error accumulated through the chain).
_REFACTOR_EVERY = 64

#: Above this many cells, the dense-tableau numerical fallback is not
#: attempted (mirrors the compile-time densification limit).
_DENSE_FALLBACK_LIMIT = 4_000_000


@dataclass
class _Column:
    """Maps one internal simplex column back to an original variable."""

    original_index: int
    sign: float  # +1 for the positive part, -1 for the negative part
    offset: float  # original lower bound folded into the shift


def standardise_form(
    form: StandardForm,
) -> Tuple[sparse.csc_matrix, np.ndarray, np.ndarray, List[_Column]]:
    """Rewrite the program as ``min c@y, A@y == b, y >= 0`` (sparse).

    ``A`` comes back as a ``scipy.sparse.csc_matrix`` assembled by block
    composition — the variable-split expansion is one sparse
    matrix-matrix product, upper-bound rows are a row slice of the
    expansion operator, and slacks are an identity block.  Module-level
    because warm-start verification (:mod:`repro.solver.warm`)
    re-standardises the successor form to check a prior basis against it.
    """
    num_original = form.num_variables
    columns: List[_Column] = []
    orig_of: List[int] = []
    sign_of: List[float] = []
    for index, (lower, upper) in enumerate(form.bounds):
        if lower is None:
            # free (or upper-bounded only): split into two parts
            columns.append(_Column(index, +1.0, 0.0))
            columns.append(_Column(index, -1.0, 0.0))
            orig_of.extend((index, index))
            sign_of.extend((1.0, -1.0))
        else:
            columns.append(_Column(index, +1.0, lower))
            orig_of.append(index)
            sign_of.append(1.0)
    num_internal = len(columns)
    orig_idx = np.asarray(orig_of, dtype=np.int64)
    signs = np.asarray(sign_of, dtype=float)

    # expansion operator E (original x internal): x = E @ y + shift
    expand = sparse.csr_matrix(
        (signs, (orig_idx, np.arange(num_internal))),
        shape=(num_original, num_internal),
    )
    shift = np.array(
        [0.0 if lower is None else lower for lower, _upper in form.bounds]
    )

    def _sparse(matrix) -> Optional[sparse.csr_matrix]:
        if matrix is None:
            return None
        if sparse.issparse(matrix):
            return matrix.tocsr()
        return sparse.csr_matrix(np.atleast_2d(np.asarray(matrix, dtype=float)))

    a_ub = _sparse(form.a_ub)
    a_eq = _sparse(form.a_eq)
    ub_matrix = None if a_ub is None else a_ub @ expand
    ub_rhs = None if a_ub is None else form.b_ub - a_ub @ shift
    eq_matrix = None if a_eq is None else a_eq @ expand
    eq_rhs = None if a_eq is None else form.b_eq - a_eq @ shift

    # upper bounds become extra inequality rows on the shifted variable:
    # the bound row for variable v is exactly row v of the expansion E
    upper_mask = np.array([upper is not None for _lower, upper in form.bounds])
    bound_block = None
    bound_rhs = None
    if upper_mask.any():
        bound_block = expand[upper_mask]
        uppers = np.array(
            [0.0 if upper is None else upper for _lower, upper in form.bounds]
        )
        bound_rhs = (uppers - shift)[upper_mask]

    ineq_pieces = [piece for piece in (ub_matrix, bound_block) if piece is not None]
    ineq_rhs_pieces = [rhs for rhs in (ub_rhs, bound_rhs) if rhs is not None]
    num_ineq = sum(piece.shape[0] for piece in ineq_pieces)
    num_eq = 0 if eq_matrix is None else eq_matrix.shape[0]

    total_rows = num_ineq + num_eq
    total_cols = num_internal + num_ineq  # slacks for inequalities
    blocks = []
    if num_ineq:
        blocks.append(
            [sparse.vstack(ineq_pieces, format="csr"), sparse.identity(num_ineq, format="csr")]
        )
    if num_eq:
        blocks.append(
            [eq_matrix, sparse.csr_matrix((num_eq, num_ineq))] if num_ineq else [eq_matrix]
        )
    if blocks:
        a_full = sparse.bmat(blocks, format="csr")
        b_full = np.concatenate(
            [np.asarray(rhs, dtype=float) for rhs in ineq_rhs_pieces]
            + ([np.asarray(eq_rhs, dtype=float)] if num_eq else [])
        )
    else:
        a_full = sparse.csr_matrix((0, total_cols))
        b_full = np.zeros(0)

    # make all right-hand sides non-negative
    negative = b_full < 0
    if negative.any():
        flip = np.where(negative, -1.0, 1.0)
        a_full = sparse.diags(flip) @ a_full
        b_full = flip * b_full

    c_full = np.zeros(total_cols)
    np.add.at(c_full, np.arange(num_internal), signs * form.c[orig_idx])

    return a_full.tocsc(), b_full, c_full, columns


def unfold_internal(
    form: StandardForm, columns: List[_Column], internal: np.ndarray
) -> np.ndarray:
    """Map a standardised-space point back to original variables.

    The inverse of :func:`standardise_form`'s variable treatment
    (re-merge split free variables, re-apply lower-bound shifts); shared
    with warm-start verification so the unfolding can never drift from
    the standardisation it inverts.
    """
    values = np.zeros(form.num_variables)
    num_internal = len(columns)
    orig_idx = np.fromiter(
        (column.original_index for column in columns), dtype=np.int64, count=num_internal
    )
    signs = np.fromiter(
        (column.sign for column in columns), dtype=float, count=num_internal
    )
    np.add.at(values, orig_idx, signs * np.asarray(internal[:num_internal], dtype=float))
    for index, (lower, _upper) in enumerate(form.bounds):
        if lower is not None:
            values[index] += lower
    return values


class _FactorisedBasis:
    """An LU-factorised basis matrix with product-form eta updates.

    ``B = B0 @ E_1 @ ... @ E_k`` where ``B0`` is the last refactorised
    basis (``splu``) and each ``E_i`` is an eta matrix — identity except
    for one column holding the FTRAN'd entering column of that pivot.
    FTRAN applies the etas forward after the LU solve; BTRAN applies
    their transposes in reverse before the transposed LU solve.
    """

    def __init__(self, a_csc: sparse.csc_matrix, basis: np.ndarray):
        self.a = a_csc
        self.refactor(basis)

    def refactor(self, basis: np.ndarray) -> None:
        matrix = self.a[:, basis].tocsc()
        try:
            self._lu = sparse_linalg.splu(matrix)
        except RuntimeError as error:  # singular basis: numerical breakdown
            raise SolverError(f"basis refactorisation failed: {error}") from error
        self._etas: List[Tuple[int, np.ndarray]] = []

    @property
    def eta_count(self) -> int:
        return len(self._etas)

    def update(self, pivot_row: int, ftran_column: np.ndarray) -> None:
        """Record the pivot ``basis[pivot_row] <- entering`` as an eta."""
        self._etas.append((pivot_row, ftran_column))

    def ftran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B x = rhs``."""
        x = self._lu.solve(rhs)
        for row, d in self._etas:
            xr = x[row] / d[row]
            x -= d * xr
            x[row] = xr
        return x

    def btran(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``B^T y = rhs``."""
        y = np.asarray(rhs, dtype=float).copy()
        for row, d in reversed(self._etas):
            y[row] = (y[row] - d @ y + d[row] * y[row]) / d[row]
        return self._lu.solve(y, trans="T")


class _RevisedSolver:
    """One two-phase revised-simplex run over a standardised system."""

    def __init__(self, a: sparse.csc_matrix, b: np.ndarray, c: np.ndarray, max_iterations: int):
        self.num_rows, self.num_structural = a.shape
        self.max_iterations = max_iterations
        # working matrix [A | I]: artificial columns appended once, used
        # as the phase-1 basis and (at zero cost) through phase 2
        self.full = sparse.hstack(
            [a, sparse.identity(self.num_rows, format="csc")], format="csc"
        )
        self.full_t = self.full.T.tocsr()
        self.b = b
        self.c = c
        self.basis = np.arange(
            self.num_structural, self.num_structural + self.num_rows, dtype=np.int64
        )
        self.in_basis = np.zeros(self.full.shape[1], dtype=bool)
        self.in_basis[self.basis] = True
        self.factor = _FactorisedBasis(self.full, self.basis)
        self.x_basic = b.astype(float).copy()

    # -- low-level helpers -------------------------------------------------
    def _column(self, index: int) -> np.ndarray:
        start, stop = self.full.indptr[index], self.full.indptr[index + 1]
        column = np.zeros(self.num_rows)
        column[self.full.indices[start:stop]] = self.full.data[start:stop]
        return column

    def _refactor(self) -> None:
        self.factor.refactor(self.basis)
        # recompute the basic point from scratch to shed eta-chain drift
        self.x_basic = self.factor.ftran(self.b.astype(float))

    def _pivot(self, entering: int, leaving_row: int, direction: np.ndarray) -> None:
        step = self.x_basic[leaving_row] / direction[leaving_row]
        self.x_basic -= step * direction
        self.x_basic[leaving_row] = step
        self.in_basis[self.basis[leaving_row]] = False
        self.in_basis[entering] = True
        self.basis[leaving_row] = entering
        self.factor.update(leaving_row, direction)
        if self.factor.eta_count >= _REFACTOR_EVERY:
            self._refactor()

    # -- simplex loops -----------------------------------------------------
    def _pivot_loop(self, costs: np.ndarray, allowed: int) -> None:
        """Bland's-rule pivoting until optimal (or raise on unbounded).

        ``allowed`` bounds the entering-column index range, mirroring the
        tableau's ``allowed_cols`` (phase 1 admits artificials back in,
        phase 2 restricts to structural columns).
        """
        for _iteration in range(self.max_iterations):
            duals = self.factor.btran(costs[self.basis])
            reduced = costs[:allowed] - self.full_t[:allowed] @ duals
            eligible = (reduced < -_TOL) & ~self.in_basis[:allowed]
            entering_candidates = np.nonzero(eligible)[0]
            if entering_candidates.shape[0] == 0:
                return
            entering = int(entering_candidates[0])  # Bland: smallest index
            direction = self.factor.ftran(self._column(entering))
            leaving = self._ratio_test(direction)
            if leaving is None:
                raise UnboundedError(
                    "entering column has no positive pivot: unbounded LP"
                )
            self._pivot(entering, leaving, direction)
        raise SolverError(f"simplex exceeded {self.max_iterations} iterations")

    def _ratio_test(self, direction: np.ndarray) -> Optional[int]:
        """Leaving row: minimum ratio, ties to the smallest basis index."""
        leaving = None
        best_ratio = np.inf
        for row in np.nonzero(direction > _TOL)[0]:
            ratio = self.x_basic[row] / direction[row]
            if ratio < best_ratio - _TOL or (
                abs(ratio - best_ratio) <= _TOL
                and (leaving is None or self.basis[row] < self.basis[leaving])
            ):
                best_ratio = ratio
                leaving = int(row)
        return leaving

    def _drive_out_artificials(self) -> None:
        """Pivot basic artificials out on any structural non-zero.

        A row whose artificial admits no structural pivot is redundant;
        its artificial stays basic at value 0 (phase 2 never prices
        artificial columns, so it can only stay there).
        """
        for row in range(self.num_rows):
            if self.basis[row] < self.num_structural:
                continue
            unit = np.zeros(self.num_rows)
            unit[row] = 1.0
            tableau_row = self.full_t[: self.num_structural] @ self.factor.btran(unit)
            candidates = np.nonzero(
                (np.abs(tableau_row) > _TOL) & ~self.in_basis[: self.num_structural]
            )[0]
            if candidates.shape[0] == 0:
                continue  # redundant row
            entering = int(candidates[0])
            direction = self.factor.ftran(self._column(entering))
            self._pivot(entering, row, direction)

    def solve(self) -> Tuple[np.ndarray, List[int]]:
        if self.num_rows == 0:
            if np.any(self.c < -_TOL):
                raise UnboundedError("objective improves without constraints")
            return np.zeros(self.num_structural), []

        # phase 1: minimise the sum of artificials from the identity basis
        phase1_costs = np.zeros(self.full.shape[1])
        phase1_costs[self.num_structural :] = 1.0
        self._pivot_loop(phase1_costs, allowed=self.full.shape[1])
        phase1_objective = float(phase1_costs[self.basis] @ self.x_basic)
        if phase1_objective > _PHASE1_TOL:
            raise InfeasibleError(
                f"phase-1 objective {phase1_objective:.3g} > 0: no feasible point"
            )
        self._drive_out_artificials()

        # phase 2: the real objective, artificials priced out
        phase2_costs = np.zeros(self.full.shape[1])
        phase2_costs[: self.num_structural] = self.c
        self._pivot_loop(phase2_costs, allowed=self.num_structural)

        values = np.zeros(self.num_structural)
        structural = self.basis < self.num_structural
        values[self.basis[structural]] = self.x_basic[structural]
        return values, [int(index) for index in self.basis]


class SimplexBackend:
    """Two-phase revised simplex over a :class:`StandardForm`."""

    def __init__(self, max_iterations: int = 100_000):
        self.max_iterations = max_iterations

    # -- public API --------------------------------------------------------
    def solve(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> np.ndarray:
        values, _state, _used = self.solve_with_state(form, warm_start)
        return values

    def solve_with_state(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> Tuple[np.ndarray, Optional[WarmStartState], bool]:
        """Solve and return ``(values, state, warm_start_used)``.

        ``state`` carries this solve's optimal basis (plus the point
        itself) for a future structurally identical program; when the
        supplied ``warm_start`` verifies against ``form`` the answer is
        produced without pivoting at all and ``warm_start_used`` is True.
        """
        standardised = standardise_form(form)
        if warm_start is not None:
            # hand the standardised tuple down so a warm miss does not
            # pay the standardisation twice
            values = try_warm_solve(form, warm_start, standardised)
            if values is not None:
                return values, refresh_state(warm_start, form, values), True
        a_full, b_full, c_full, columns = standardised
        internal, basis = self._two_phase(a_full, b_full, c_full)
        values = unfold_internal(form, columns, internal)
        state = WarmStartState(
            signature=form_signature(form),
            basis=tuple(int(index) for index in basis),
            primal=values.copy(),
        )
        return values, state, False

    # -- two-phase drivers -------------------------------------------------
    def _two_phase(
        self, a: sparse.csc_matrix, b: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, List[int]]:
        """Revised simplex, falling back to the dense tableau on breakdown.

        The factorised path raises :class:`SolverError` on numerical
        breakdown (singular refactorisation, iteration blow-up); small
        systems then rerun on the dense tableau, whose element-wise
        pivoting has no factorisation to lose.  Infeasible/unbounded
        verdicts are answers, not breakdowns, and propagate directly.
        """
        try:
            return _RevisedSolver(a, b, c, self.max_iterations).solve()
        except (InfeasibleError, UnboundedError):
            raise
        except SolverError:
            if a.shape[0] * a.shape[1] > _DENSE_FALLBACK_LIMIT:
                raise
            return self._two_phase_dense(a.toarray(), b, c)

    # -- dense tableau fallback --------------------------------------------
    def _two_phase_dense(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, List[int]]:
        num_rows, num_cols = a.shape
        if num_rows == 0:
            # no constraints: optimum is at the lower bounds unless unbounded
            if np.any(c < -_TOL):
                raise UnboundedError("objective improves without constraints")
            return np.zeros(num_cols), []

        # phase 1 tableau: [A | I | b]
        tableau = np.zeros((num_rows + 1, num_cols + num_rows + 1))
        tableau[:num_rows, :num_cols] = a
        tableau[:num_rows, num_cols : num_cols + num_rows] = np.eye(num_rows)
        tableau[:num_rows, -1] = b
        basis = list(range(num_cols, num_cols + num_rows))

        # phase-1 reduced costs: minimise sum of artificials
        cost = np.zeros(num_cols + num_rows)
        cost[num_cols:] = 1.0
        tableau[-1, :-1] = cost
        tableau[-1, -1] = 0.0
        for row, basic in enumerate(basis):
            tableau[-1, :] -= cost[basic] * tableau[row, :]

        self._pivot_loop(tableau, basis, allowed_cols=num_cols + num_rows)
        phase1_objective = -tableau[-1, -1]
        if phase1_objective > _PHASE1_TOL:
            raise InfeasibleError(
                f"phase-1 objective {phase1_objective:.3g} > 0: no feasible point"
            )

        # drive remaining artificial variables out of the basis
        for row in range(num_rows):
            if basis[row] >= num_cols:
                pivot_col = next(
                    (
                        col
                        for col in range(num_cols)
                        if abs(tableau[row, col]) > _TOL
                    ),
                    None,
                )
                if pivot_col is not None:
                    self._pivot(tableau, basis, row, pivot_col)
                # else: the row is redundant; its artificial stays basic at 0

        # phase 2: rebuild the cost row for the real objective
        tableau[-1, :] = 0.0
        tableau[-1, :num_cols] = c
        tableau[-1, num_cols:-1] = 0.0
        for row, basic in enumerate(basis):
            if basic < num_cols:
                tableau[-1, :] -= c[basic] * tableau[row, :]

        self._pivot_loop(tableau, basis, allowed_cols=num_cols)

        values = np.zeros(num_cols)
        for row, basic in enumerate(basis):
            if basic < num_cols:
                values[basic] = tableau[row, -1]
        return values, basis

    def _pivot_loop(self, tableau: np.ndarray, basis: List[int], allowed_cols: int) -> None:
        """Bland's-rule pivoting until optimal (or raise on unbounded)."""
        num_rows = tableau.shape[0] - 1
        for _iteration in range(self.max_iterations):
            entering = None
            for col in range(allowed_cols):
                if tableau[-1, col] < -_TOL:
                    entering = col
                    break
            if entering is None:
                return
            # ratio test
            leaving = None
            best_ratio = np.inf
            for row in range(num_rows):
                coeff = tableau[row, entering]
                if coeff > _TOL:
                    ratio = tableau[row, -1] / coeff
                    if ratio < best_ratio - _TOL or (
                        abs(ratio - best_ratio) <= _TOL
                        and (leaving is None or basis[row] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                raise UnboundedError("entering column has no positive pivot: unbounded LP")
            self._pivot(tableau, basis, leaving, entering)
        raise SolverError(f"simplex exceeded {self.max_iterations} iterations")

    @staticmethod
    def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
        pivot_value = tableau[row, col]
        tableau[row, :] /= pivot_value
        for other in range(tableau.shape[0]):
            if other != row and abs(tableau[other, col]) > 0.0:
                tableau[other, :] -= tableau[other, col] * tableau[row, :]
        basis[row] = col
