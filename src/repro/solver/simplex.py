"""A from-scratch dense two-phase simplex LP backend.

This backend keeps the repository self-contained (the paper's artifact uses
ECOS through cvxpy; we cross-check scipy's HiGGS/HiGHS against this
implementation in the test suite).  It is a classic tableau simplex:

1. Standardise: shift finite lower bounds to zero, split free variables
   into positive/negative parts, turn finite upper bounds into extra rows,
   add slack variables for all inequalities.
2. Phase 1: add one artificial variable per row and minimise their sum to
   find a basic feasible solution (Bland's rule, so it terminates).
3. Phase 2: minimise the real objective from that basis.

Intended for small/medium programs (hundreds of variables); the OEF
allocators default to the scipy backend and use this one for verification
and as a fallback.

Warm starting: ``solve(form, warm_start=prior_state)`` accepts the
:class:`~repro.solver.warm.WarmStartState` of a structurally identical
prior program.  The prior optimal basis is re-verified against the new
numbers (feasible + strictly optimal, hence unique — see
:mod:`repro.solver.warm`); on success the solution drops out of one
``(m, m)`` triangular solve instead of the full two-phase run, and on
any doubt the backend silently falls back to the cold path, so warm
starts can never change an answer.  ``solve_with_state`` additionally
returns the state of *this* solve for the next round to reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.solver.problem import StandardForm
from repro.solver.warm import (
    WarmStartState,
    form_signature,
    refresh_state,
    try_warm_solve,
)
from repro.solver.warm import _dense as _densify

_TOL = 1e-9


@dataclass
class _Column:
    """Maps one internal simplex column back to an original variable."""

    original_index: int
    sign: float  # +1 for the positive part, -1 for the negative part
    offset: float  # original lower bound folded into the shift


def standardise_form(
    form: StandardForm,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[_Column]]:
    """Rewrite the program as ``min c@y, A@y == b, y >= 0``.

    Module-level because warm-start verification
    (:mod:`repro.solver.warm`) re-standardises the successor form to
    check a prior basis against it.
    """
    num_original = form.num_variables
    columns: List[_Column] = []
    # map original variable -> list of (internal column, sign)
    col_of: List[List[int]] = [[] for _ in range(num_original)]
    for index, (lower, upper) in enumerate(form.bounds):
        if lower is None:
            # free (or upper-bounded only): split into two parts
            columns.append(_Column(index, +1.0, 0.0))
            col_of[index].append(len(columns) - 1)
            columns.append(_Column(index, -1.0, 0.0))
            col_of[index].append(len(columns) - 1)
        else:
            columns.append(_Column(index, +1.0, lower))
            col_of[index].append(len(columns) - 1)

    num_internal = len(columns)

    def expand_matrix(matrix: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if matrix is None:
            return None
        expanded = np.zeros((matrix.shape[0], num_internal))
        for internal_index, column in enumerate(columns):
            expanded[:, internal_index] += column.sign * matrix[:, column.original_index]
        return expanded

    def shift_rhs(matrix: Optional[np.ndarray], rhs: Optional[np.ndarray]):
        """Fold lower-bound shifts x = y + lo into the right-hand side."""
        if matrix is None or rhs is None:
            return rhs
        shift = np.zeros(num_original)
        for index, (lower, _upper) in enumerate(form.bounds):
            if lower is not None:
                shift[index] = lower
        return rhs - matrix @ shift

    form_a_ub = _densify(form.a_ub)
    form_a_eq = _densify(form.a_eq)
    ub_matrix = expand_matrix(form_a_ub)
    ub_rhs = shift_rhs(form_a_ub, form.b_ub)
    eq_matrix = expand_matrix(form_a_eq)
    eq_rhs = shift_rhs(form_a_eq, form.b_eq)

    # upper bounds become extra inequality rows on the shifted variable
    bound_rows: List[np.ndarray] = []
    bound_rhs: List[float] = []
    for index, (lower, upper) in enumerate(form.bounds):
        if upper is None:
            continue
        row = np.zeros(num_internal)
        for internal_index in col_of[index]:
            row[internal_index] = columns[internal_index].sign
        bound_rows.append(row)
        bound_rhs.append(upper - (lower if lower is not None else 0.0))

    ineq_pieces = []
    ineq_rhs_pieces = []
    if ub_matrix is not None:
        ineq_pieces.append(ub_matrix)
        ineq_rhs_pieces.append(np.asarray(ub_rhs, dtype=float))
    if bound_rows:
        ineq_pieces.append(np.vstack(bound_rows))
        ineq_rhs_pieces.append(np.asarray(bound_rhs, dtype=float))

    num_ineq = sum(piece.shape[0] for piece in ineq_pieces)
    num_eq = 0 if eq_matrix is None else eq_matrix.shape[0]

    total_cols = num_internal + num_ineq  # slacks for inequalities
    total_rows = num_ineq + num_eq
    a_full = np.zeros((total_rows, total_cols))
    b_full = np.zeros(total_rows)

    row_cursor = 0
    slack_cursor = num_internal
    for piece, rhs_piece in zip(ineq_pieces, ineq_rhs_pieces):
        rows = piece.shape[0]
        a_full[row_cursor : row_cursor + rows, :num_internal] = piece
        for local in range(rows):
            a_full[row_cursor + local, slack_cursor] = 1.0
            slack_cursor += 1
        b_full[row_cursor : row_cursor + rows] = rhs_piece
        row_cursor += rows
    if eq_matrix is not None:
        rows = eq_matrix.shape[0]
        a_full[row_cursor : row_cursor + rows, :num_internal] = eq_matrix
        b_full[row_cursor : row_cursor + rows] = np.asarray(eq_rhs, dtype=float)

    # make all right-hand sides non-negative
    negative = b_full < 0
    a_full[negative] *= -1.0
    b_full[negative] *= -1.0

    c_full = np.zeros(total_cols)
    for internal_index, column in enumerate(columns):
        c_full[internal_index] += column.sign * form.c[column.original_index]

    return a_full, b_full, c_full, columns


def unfold_internal(
    form: StandardForm, columns: List[_Column], internal: np.ndarray
) -> np.ndarray:
    """Map a standardised-space point back to original variables.

    The inverse of :func:`standardise_form`'s variable treatment
    (re-merge split free variables, re-apply lower-bound shifts); shared
    with warm-start verification so the unfolding can never drift from
    the standardisation it inverts.
    """
    values = np.zeros(form.num_variables)
    for column_index, column in enumerate(columns):
        values[column.original_index] += column.sign * internal[column_index]
    for index, (lower, _upper) in enumerate(form.bounds):
        if lower is not None:
            values[index] += lower
    return values


class SimplexBackend:
    """Two-phase dense tableau simplex over a :class:`StandardForm`."""

    def __init__(self, max_iterations: int = 100_000):
        self.max_iterations = max_iterations

    # -- public API --------------------------------------------------------
    def solve(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> np.ndarray:
        values, _state, _used = self.solve_with_state(form, warm_start)
        return values

    def solve_with_state(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> Tuple[np.ndarray, Optional[WarmStartState], bool]:
        """Solve and return ``(values, state, warm_start_used)``.

        ``state`` carries this solve's optimal basis (plus the point
        itself) for a future structurally identical program; when the
        supplied ``warm_start`` verifies against ``form`` the answer is
        produced without pivoting at all and ``warm_start_used`` is True.
        """
        standardised = standardise_form(form)
        if warm_start is not None:
            # hand the standardised tuple down so a warm miss does not
            # pay the (dense, O(rows x cols)) standardisation twice
            values = try_warm_solve(form, warm_start, standardised)
            if values is not None:
                return values, refresh_state(warm_start, form, values), True
        a_full, b_full, c_full, columns = standardised
        internal, basis = self._two_phase(a_full, b_full, c_full)
        values = unfold_internal(form, columns, internal)
        state = WarmStartState(
            signature=form_signature(form),
            basis=tuple(int(index) for index in basis),
            primal=values.copy(),
        )
        return values, state, False

    # -- two-phase tableau simplex -------------------------------------------
    def _two_phase(
        self, a: np.ndarray, b: np.ndarray, c: np.ndarray
    ) -> Tuple[np.ndarray, List[int]]:
        num_rows, num_cols = a.shape
        if num_rows == 0:
            # no constraints: optimum is at the lower bounds unless unbounded
            if np.any(c < -_TOL):
                raise UnboundedError("objective improves without constraints")
            return np.zeros(num_cols), []

        # phase 1 tableau: [A | I | b]
        tableau = np.zeros((num_rows + 1, num_cols + num_rows + 1))
        tableau[:num_rows, :num_cols] = a
        tableau[:num_rows, num_cols : num_cols + num_rows] = np.eye(num_rows)
        tableau[:num_rows, -1] = b
        basis = list(range(num_cols, num_cols + num_rows))

        # phase-1 reduced costs: minimise sum of artificials
        cost = np.zeros(num_cols + num_rows)
        cost[num_cols:] = 1.0
        tableau[-1, :-1] = cost
        tableau[-1, -1] = 0.0
        for row, basic in enumerate(basis):
            tableau[-1, :] -= cost[basic] * tableau[row, :]

        self._pivot_loop(tableau, basis, allowed_cols=num_cols + num_rows)
        phase1_objective = -tableau[-1, -1]
        if phase1_objective > 1e-7:
            raise InfeasibleError(
                f"phase-1 objective {phase1_objective:.3g} > 0: no feasible point"
            )

        # drive remaining artificial variables out of the basis
        for row in range(num_rows):
            if basis[row] >= num_cols:
                pivot_col = next(
                    (
                        col
                        for col in range(num_cols)
                        if abs(tableau[row, col]) > _TOL
                    ),
                    None,
                )
                if pivot_col is not None:
                    self._pivot(tableau, basis, row, pivot_col)
                # else: the row is redundant; its artificial stays basic at 0

        # phase 2: rebuild the cost row for the real objective
        tableau[-1, :] = 0.0
        tableau[-1, :num_cols] = c
        tableau[-1, num_cols:-1] = 0.0
        for row, basic in enumerate(basis):
            if basic < num_cols:
                tableau[-1, :] -= c[basic] * tableau[row, :]

        self._pivot_loop(tableau, basis, allowed_cols=num_cols)

        values = np.zeros(num_cols)
        for row, basic in enumerate(basis):
            if basic < num_cols:
                values[basic] = tableau[row, -1]
        return values, basis

    def _pivot_loop(self, tableau: np.ndarray, basis: List[int], allowed_cols: int) -> None:
        """Bland's-rule pivoting until optimal (or raise on unbounded)."""
        num_rows = tableau.shape[0] - 1
        for _iteration in range(self.max_iterations):
            entering = None
            for col in range(allowed_cols):
                if tableau[-1, col] < -_TOL:
                    entering = col
                    break
            if entering is None:
                return
            # ratio test
            leaving = None
            best_ratio = np.inf
            for row in range(num_rows):
                coeff = tableau[row, entering]
                if coeff > _TOL:
                    ratio = tableau[row, -1] / coeff
                    if ratio < best_ratio - _TOL or (
                        abs(ratio - best_ratio) <= _TOL
                        and (leaving is None or basis[row] < basis[leaving])
                    ):
                        best_ratio = ratio
                        leaving = row
            if leaving is None:
                raise UnboundedError("entering column has no positive pivot: unbounded LP")
            self._pivot(tableau, basis, leaving, entering)
        raise SolverError(f"simplex exceeded {self.max_iterations} iterations")

    @staticmethod
    def _pivot(tableau: np.ndarray, basis: List[int], row: int, col: int) -> None:
        pivot_value = tableau[row, col]
        tableau[row, :] /= pivot_value
        for other in range(tableau.shape[0]):
            if other != row and abs(tableau[other, col]) > 0.0:
                tableau[other, :] -= tableau[other, col] * tableau[row, :]
        basis[row] = col
