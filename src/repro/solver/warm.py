"""Warm-start states and their verification for the LP backends.

A :class:`WarmStartState` captures what one optimal solve learned about a
program so a *structurally identical* successor program (same variables,
same constraint rows, possibly different numbers) can be re-solved
faster.  Two flavours of evidence are carried, and either may be absent:

* a **simplex basis** (``basis``) — the optimal basic column set of the
  standardised program, produced by
  :class:`~repro.solver.simplex.SimplexBackend`;
* a **KKT certificate** (``primal`` + ``dual_ub``/``dual_eq``) — the
  optimal point and its row duals, produced by
  :class:`~repro.solver.scipy_backend.ScipyBackend` (HiGHS reports the
  marginals for free).

Correctness contract
--------------------
Warm starting must never change an answer, only skip work.  Both reuse
paths therefore *verify before they trust*: the candidate is accepted
only when it is (a) feasible for the new program, (b) provably optimal
for it, and (c) provably the **unique** optimum — strictly positive
nonbasic reduced costs for the basis path, strict complementarity plus a
full-rank active set for the KKT path.  A unique optimum is exactly the
condition under which a cold solve is guaranteed to land on the same
point, so a verified warm answer matches a cold answer to numerical
tolerance.  Anything short of that certainty returns ``None`` and the
caller falls back to a cold solve.

The verification itself is plain numpy linear algebra (one ``(m, m)``
factorisation plus matrix-vector products), independent of which backend
produced the state and of which backend would run the cold fallback —
which is what makes warm starting backend-orthogonal.

Programs with free variables (no lower bound) are standardised by
variable splitting, which makes every optimal basis degenerate in the
split pair; the strict checks then reject reuse, so such programs simply
always cold-solve.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np
from scipy import sparse

from repro.solver.problem import StandardForm

#: feasibility slack accepted when re-checking a candidate point/basis
_FEAS_TOL = 1e-9
#: strictness threshold certifying uniqueness of the optimum
_STRICT_TOL = 1e-6


@dataclass(frozen=True)
class WarmStartState:
    """Reusable evidence from one optimal LP solve.

    ``signature`` pins the program structure (see :func:`form_signature`);
    reuse is attempted only against a form with the same signature.
    """

    signature: Tuple
    #: Optimal basic columns of the standardised program (simplex flavour).
    basis: Optional[Tuple[int, ...]] = None
    #: Optimal point in original variable space (KKT flavour).
    primal: Optional[np.ndarray] = None
    #: Inequality-row duals, >= 0 in the minimisation convention.
    dual_ub: Optional[np.ndarray] = None
    #: Equality-row duals (free sign).
    dual_eq: Optional[np.ndarray] = None

    def __repr__(self) -> str:  # ndarrays make the default repr unreadable
        flavours = []
        if self.basis is not None:
            flavours.append(f"basis[{len(self.basis)}]")
        if self.primal is not None:
            flavours.append(f"kkt[{self.primal.shape[0]}]")
        return f"WarmStartState({', '.join(flavours) or 'empty'})"


def form_signature(form: StandardForm) -> Tuple:
    """Structural identity of a standard form: shapes and bound pattern.

    Two forms with equal signatures have the same variables, the same
    finite/infinite bound pattern, and the same number of inequality and
    equality rows — the precondition for any basis or KKT reuse.  The
    numeric *values* (coefficients, right-hand sides, bound levels) are
    deliberately excluded; those are what warm starting rides across.
    """
    rows_ub = 0 if form.a_ub is None else int(form.a_ub.shape[0])
    rows_eq = 0 if form.a_eq is None else int(form.a_eq.shape[0])
    bound_pattern = tuple(
        (lower is None, upper is None) for lower, upper in form.bounds
    )
    return (form.num_variables, bound_pattern, rows_ub, rows_eq, bool(form.maximise))


def try_warm_solve(
    form: StandardForm,
    state: Optional[WarmStartState],
    standardised: Optional[Tuple] = None,
) -> Optional[np.ndarray]:
    """Solution of ``form`` via ``state``, or ``None`` if unverifiable.

    Tries the basis flavour first (it survives right-hand-side and
    coefficient drift), then the KKT flavour (it survives objective and
    slack-side drift).  A non-``None`` return is feasible, optimal, and
    certified unique for ``form`` — i.e. equal to what a cold solve
    would produce, up to numerical tolerance.

    ``standardised`` optionally passes a precomputed
    :func:`~repro.solver.simplex.standardise_form` tuple of ``form`` so
    a caller about to cold-solve anyway (the simplex backend) does not
    standardise twice on a warm miss.
    """
    if state is None or state.signature != form_signature(form):
        return None
    if state.basis is not None:
        values = _basis_reuse(form, state.basis, standardised)
        if values is not None:
            return values
    if state.primal is not None and (
        state.dual_ub is not None or state.dual_eq is not None or _rowless(form)
    ):
        return _kkt_reuse(form, state)
    return None


def refresh_state(
    state: WarmStartState, form: StandardForm, values: np.ndarray
) -> WarmStartState:
    """The state to carry forward after a successful warm reuse."""
    return replace(
        state, signature=form_signature(form), primal=np.asarray(values, dtype=float)
    )


def _rowless(form: StandardForm) -> bool:
    return form.a_ub is None and form.a_eq is None


def _dense(matrix) -> Optional[np.ndarray]:
    if matrix is None:
        return None
    if sparse.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


# -- basis flavour -------------------------------------------------------------
def _basis_reuse(
    form: StandardForm,
    basis: Tuple[int, ...],
    standardised: Optional[Tuple] = None,
) -> Optional[np.ndarray]:
    """Re-validate a prior optimal basis against the new standardised form.

    Accepts only when the basis is (still) primal feasible and every
    nonbasic reduced cost is *strictly* positive — the classic sufficient
    condition for the basic solution to be the unique optimum, hence the
    point any cold solve converges to.
    """
    from repro.solver.simplex import standardise_form, unfold_internal

    a, b, c, columns = (
        standardised if standardised is not None else standardise_form(form)
    )
    num_rows, num_cols = a.shape
    indices = np.asarray(basis, dtype=int)
    if (
        num_rows == 0
        or indices.shape[0] != num_rows
        or indices.min(initial=0) < 0
        or indices.max(initial=-1) >= num_cols
        or np.unique(indices).shape[0] != num_rows
    ):
        return None
    # the standardised matrix is sparse; only the (m, m) basis slice is
    # densified for the two solves — never the full system
    basic = a[:, indices].toarray() if sparse.issparse(a) else a[:, indices]
    try:
        x_basic = np.linalg.solve(basic, b)
        duals = np.linalg.solve(basic.T, c[indices])
    except np.linalg.LinAlgError:
        return None
    scale = max(1.0, float(np.abs(b).max(initial=0.0)))
    if not np.all(np.isfinite(x_basic)):
        return None
    # guard against an ill-conditioned (near-singular) basis matrix
    if float(np.abs(basic @ x_basic - b).max(initial=0.0)) > _FEAS_TOL * scale * 1e3:
        return None
    if float(x_basic.min(initial=0.0)) < -_FEAS_TOL * scale:
        return None
    reduced = c - np.asarray(a.T @ duals).ravel()
    nonbasic = np.ones(num_cols, dtype=bool)
    nonbasic[indices] = False
    if nonbasic.any() and float(reduced[nonbasic].min()) <= _STRICT_TOL:
        return None  # optimal but possibly not unique: cold-solve instead
    internal = np.zeros(num_cols)
    internal[indices] = np.clip(x_basic, 0.0, None)
    return unfold_internal(form, columns, internal)


# -- KKT flavour ---------------------------------------------------------------
def _kkt_reuse(form: StandardForm, state: WarmStartState) -> Optional[np.ndarray]:
    """Re-validate a prior (point, duals) certificate against the new form.

    The point must be feasible, stationary for the new objective with the
    stored duals, strictly complementary on every active inequality, and
    pinned down by a full-column-rank active set — together these certify
    a unique optimum, so returning the stored point matches a cold solve.
    """
    x = np.asarray(state.primal, dtype=float)
    if x.shape[0] != form.num_variables or not np.all(np.isfinite(x)):
        return None
    # sparse systems are verified sparse: every check below is a mat-vec
    # except the final rank test, which densifies only its active slice
    a_ub = form.a_ub if sparse.issparse(form.a_ub) else _dense(form.a_ub)
    a_eq = form.a_eq if sparse.issparse(form.a_eq) else _dense(form.a_eq)
    mu = None if state.dual_ub is None else np.asarray(state.dual_ub, dtype=float)
    nu = None if state.dual_eq is None else np.asarray(state.dual_eq, dtype=float)
    if (a_ub is None) != (mu is None) or (a_eq is None) != (nu is None):
        return None

    scale = max(1.0, float(np.abs(x).max(initial=0.0)))
    # primal feasibility
    slack = None
    if a_ub is not None:
        if mu.shape[0] != a_ub.shape[0]:
            return None
        slack = form.b_ub - a_ub @ x
        if float(slack.min(initial=0.0)) < -_FEAS_TOL * scale:
            return None
        if float(mu.min(initial=0.0)) < -_FEAS_TOL:
            return None
    if a_eq is not None:
        if nu.shape[0] != a_eq.shape[0]:
            return None
        if float(np.abs(a_eq @ x - form.b_eq).max(initial=0.0)) > _FEAS_TOL * scale:
            return None

    lowers = np.array(
        [-np.inf if lo is None else lo for lo, _ in form.bounds], dtype=float
    )
    uppers = np.array(
        [np.inf if up is None else up for _, up in form.bounds], dtype=float
    )
    if float((lowers - x).max(initial=0.0)) > _FEAS_TOL * scale:
        return None
    if float((x - uppers).max(initial=0.0)) > _FEAS_TOL * scale:
        return None

    # stationarity: r = c + A_ub^T mu + A_eq^T nu must be a valid bound
    # multiplier pattern for x (r_i >= 0 at lower, <= 0 at upper, 0 inside)
    reduced = form.c.copy()
    if a_ub is not None:
        reduced = reduced + np.asarray(a_ub.T @ mu).ravel()
    if a_eq is not None:
        reduced = reduced + np.asarray(a_eq.T @ nu).ravel()
    at_lower = x <= lowers + _FEAS_TOL * scale
    at_upper = x >= uppers - _FEAS_TOL * scale
    interior = ~(at_lower | at_upper)
    if interior.any() and float(np.abs(reduced[interior]).max()) > _STRICT_TOL:
        return None
    if at_lower.any() and float(reduced[at_lower & ~at_upper].min(initial=0.0)) < -_STRICT_TOL:
        return None
    if at_upper.any() and float(reduced[at_upper & ~at_lower].max(initial=0.0)) > _STRICT_TOL:
        return None

    # strict complementarity on inequality rows: every active row must
    # carry a strictly positive dual (else the optimal face may be wide)
    active_rows = np.zeros(0, dtype=bool)
    if a_ub is not None:
        active_rows = slack <= _FEAS_TOL * max(
            1.0, float(np.abs(form.b_ub).max(initial=0.0))
        )
        if bool(np.any(active_rows & (mu <= _STRICT_TOL))):
            return None
        if bool(np.any(~active_rows & (mu > _STRICT_TOL))):
            return None  # positive dual on a slack row: stale certificate

    # uniqueness: variables not pinned at a bound by a strict reduced cost
    # must be fully determined by the active rows
    pinned = (at_lower & (reduced > _STRICT_TOL)) | (
        at_upper & (reduced < -_STRICT_TOL)
    ) | (at_lower & at_upper)
    free = ~pinned
    num_free = int(free.sum())
    if num_free:
        pieces = []
        if a_ub is not None and bool(active_rows.any()):
            block = a_ub.tocsr()[active_rows] if sparse.issparse(a_ub) else a_ub[active_rows]
            pieces.append(_dense(block[:, free]))
        if a_eq is not None:
            block = a_eq.tocsr() if sparse.issparse(a_eq) else a_eq
            pieces.append(_dense(block[:, free]))
        if not pieces:
            return None
        active = np.vstack(pieces)
        if np.linalg.matrix_rank(active, tol=1e-8) < num_free:
            return None
    return x.copy()


__all__ = ["WarmStartState", "form_signature", "refresh_state", "try_warm_solve"]
