"""An incremental LP session over scipy's vendored HiGHS bindings.

The cutting-plane loop in :class:`~repro.core.cooperative.CooperativeOEF`
re-solves an LP that grows by a few hundred rows per round.  Through
``scipy.optimize.linprog`` every round pays model construction, presolve,
and a from-scratch simplex run on the full row set.  HiGHS itself is
incremental: rows can be appended to (or deleted from) a loaded model and
the retained basis warm-starts the next dual-simplex run, which then only
has to price the new rows in.  scipy ships the complete ``highspy``
bindings as the private module ``scipy.optimize._highspy`` — this wrapper
keeps every private-API touch in one place, behind a feature probe, so
callers degrade gracefully to the per-round :func:`linprog` path when the
vendored surface is absent or changes shape.

Determinism: the session pins ``threads=1``/``parallel=off`` and disables
solver output, so repeated runs of the same model produce identical
vertices — the property the allocator's bit-identical replay contract
relies on.

Only the shapes this repository needs are exposed: minimisation over
box-bounded columns with one-sided ``A x <= b`` rows (every OEF program
standardises to that), row append/delete, and basic-status introspection
for slack-based cut dropping.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import InfeasibleError, SolverError, UnboundedError

try:  # pragma: no cover - absence exercised via _core=None monkeypatch
    from scipy.optimize._highspy import _core
except Exception:  # ImportError or a reshaped private API
    _core = None


def incremental_available() -> bool:
    """True when the vendored HiGHS bindings expose the session surface."""
    if _core is None:
        return False
    return all(
        hasattr(_core, name) for name in ("_Highs", "HighsLp", "MatrixFormat")
    ) and all(
        hasattr(_core._Highs, name)
        for name in ("passModel", "run", "addRows", "deleteRows", "getBasis", "getSolution")
    )


_INF = float("inf")


class IncrementalLP:
    """One mutable ``min c@x  s.t.  A x <= b,  l <= x <= u`` HiGHS session.

    Rows appended with :meth:`add_rows` (and removed with
    :meth:`delete_rows`) keep the solver's basis, so the next
    :meth:`solve` is a warm dual-simplex run rather than a cold start.
    """

    def __init__(
        self,
        c: np.ndarray,
        col_lower: np.ndarray,
        col_upper: np.ndarray,
        a_ub: Optional[sparse.spmatrix] = None,
        b_ub: Optional[np.ndarray] = None,
    ):
        if not incremental_available():
            raise SolverError("vendored HiGHS session API unavailable")
        c = np.asarray(c, dtype=float)
        num_cols = c.shape[0]
        rows = sparse.csr_matrix((0, num_cols)) if a_ub is None else a_ub.tocsr()
        rhs = np.zeros(0) if b_ub is None else np.asarray(b_ub, dtype=float)
        if rows.shape[0] != rhs.shape[0]:
            raise SolverError("row/rhs shape mismatch")

        lp = _core.HighsLp()
        lp.num_col_ = num_cols
        lp.num_row_ = rows.shape[0]
        lp.col_cost_ = c
        lp.col_lower_ = np.asarray(col_lower, dtype=float)
        lp.col_upper_ = np.asarray(col_upper, dtype=float)
        lp.row_lower_ = np.full(rows.shape[0], -_INF)
        lp.row_upper_ = rhs
        lp.a_matrix_.format_ = _core.MatrixFormat.kRowwise
        lp.a_matrix_.num_col_ = num_cols
        lp.a_matrix_.num_row_ = rows.shape[0]
        lp.a_matrix_.start_ = rows.indptr.astype(np.int32)
        lp.a_matrix_.index_ = rows.indices.astype(np.int32)
        lp.a_matrix_.value_ = rows.data.astype(float)

        self._highs = _core._Highs()
        # deterministic, quiet, single-threaded: same model -> same vertex
        self._highs.setOptionValue("output_flag", False)
        self._highs.setOptionValue("threads", 1)
        self._highs.setOptionValue("parallel", "off")
        self._highs.passModel(lp)
        self.num_cols = num_cols
        self.num_rows = rows.shape[0]

    # -- row edits ---------------------------------------------------------
    def add_rows(self, matrix: sparse.spmatrix, rhs: np.ndarray) -> None:
        """Append ``matrix @ x <= rhs`` rows, keeping the current basis."""
        rows = matrix.tocsr()
        rhs = np.asarray(rhs, dtype=float)
        count = rows.shape[0]
        if count == 0:
            return
        status = self._highs.addRows(
            count,
            np.full(count, -_INF),
            rhs,
            rows.nnz,
            rows.indptr.astype(np.int32),
            rows.indices.astype(np.int32),
            rows.data.astype(float),
        )
        if status == _core.HighsStatus.kError:
            raise SolverError("HiGHS addRows failed")
        self.num_rows += count

    def delete_rows(self, indices: Sequence[int]) -> None:
        """Remove rows by current index, keeping the rest of the basis."""
        index_array = np.asarray(sorted(indices), dtype=np.int32)
        if index_array.shape[0] == 0:
            return
        status = self._highs.deleteRows(index_array.shape[0], index_array)
        if status == _core.HighsStatus.kError:
            raise SolverError("HiGHS deleteRows failed")
        self.num_rows -= index_array.shape[0]

    # -- solve -------------------------------------------------------------
    def solve(self) -> np.ndarray:
        """Re-optimise (warm from the retained basis) and return ``x``."""
        run_status = self._highs.run()
        model_status = self._highs.getModelStatus()
        if model_status == _core.HighsModelStatus.kInfeasible:
            raise InfeasibleError("incremental LP infeasible")
        if model_status == _core.HighsModelStatus.kUnbounded:
            raise UnboundedError("incremental LP unbounded")
        if (
            run_status == _core.HighsStatus.kError
            or model_status != _core.HighsModelStatus.kOptimal
        ):
            raise SolverError(
                f"incremental HiGHS run failed (status={model_status})"
            )
        return np.asarray(self._highs.getSolution().col_value, dtype=float)

    # -- introspection -----------------------------------------------------
    def basic_row_mask(self) -> np.ndarray:
        """Boolean mask of rows whose slack is basic (row not binding)."""
        statuses = self._highs.getBasis().row_status
        basic = _core.HighsBasisStatus.kBasic
        return np.fromiter(
            (status == basic for status in statuses), dtype=bool, count=len(statuses)
        )

    def row_values(self) -> np.ndarray:
        """Current ``A x`` row activity vector."""
        return np.asarray(self._highs.getSolution().row_value, dtype=float)


__all__ = ["IncrementalLP", "incremental_available"]
