"""Affine expression algebra for the LP modeling layer.

Expressions are kept deliberately simple: a :class:`LinExpr` is a mapping
from variable index to coefficient plus a constant offset.  Operator
overloading on :class:`Variable` and :class:`LinExpr` lets model code read
like the paper's math, e.g. ``w[l] @ x[l] <= capacity``.

The classes here are data-only; they never talk to a solver.  The
:class:`~repro.solver.problem.LinearProgram` that created the variables is
responsible for compiling expressions into matrices.
"""

from __future__ import annotations

import numbers
from typing import Dict, Iterable, Sequence, Union

import numpy as np

from repro.exceptions import ModelError

Scalar = Union[int, float, np.integer, np.floating]
ExprLike = Union["Variable", "LinExpr", Scalar]


def _is_scalar(value: object) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


class Variable:
    """A scalar decision variable.

    Instances are created by :meth:`LinearProgram.new_variable` and carry a
    global column index within their owning program.  All arithmetic
    promotes to :class:`LinExpr`.
    """

    __slots__ = ("index", "name", "lower", "upper")

    def __init__(self, index: int, name: str, lower: float | None, upper: float | None):
        self.index = index
        self.name = name
        self.lower = lower
        self.upper = upper

    # -- promotion -------------------------------------------------------
    def to_expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self.to_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-self.to_expr()) + other

    def __mul__(self, other: Scalar) -> "LinExpr":
        return self.to_expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "LinExpr":
        return self.to_expr() / other

    def __neg__(self) -> "LinExpr":
        return self.to_expr() * -1.0

    # -- comparisons build constraints ------------------------------------
    def __le__(self, other: ExprLike):
        return self.to_expr() <= other

    def __ge__(self, other: ExprLike):
        return self.to_expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self) -> int:
        return hash(("Variable", self.index))

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, index={self.index})"


class LinExpr:
    """An affine expression ``sum(coeff_i * x_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Dict[int, float] | None = None, constant: float = 0.0):
        self.coeffs: Dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def coerce(value: ExprLike) -> "LinExpr":
        """Promote a variable or scalar to a :class:`LinExpr`."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if _is_scalar(value):
            return LinExpr({}, float(value))
        raise ModelError(f"cannot use {value!r} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    def is_constant(self) -> bool:
        return not self.coeffs

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        other = LinExpr.coerce(other)
        result = self.copy()
        for index, coeff in other.coeffs.items():
            result.coeffs[index] = result.coeffs.get(index, 0.0) + coeff
        result.constant += other.constant
        return result

    __radd__ = __add__

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + (LinExpr.coerce(other) * -1.0)

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, other: Scalar) -> "LinExpr":
        if not _is_scalar(other):
            raise ModelError("linear expressions only support scalar multiplication")
        factor = float(other)
        return LinExpr(
            {index: coeff * factor for index, coeff in self.coeffs.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, other: Scalar) -> "LinExpr":
        if not _is_scalar(other):
            raise ModelError("linear expressions only support scalar division")
        if other == 0:
            raise ModelError("division of a linear expression by zero")
        return self * (1.0 / float(other))

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons ------------------------------------------------------
    def __le__(self, other: ExprLike):
        from repro.solver.problem import Constraint

        return Constraint(self - LinExpr.coerce(other), "<=")

    def __ge__(self, other: ExprLike):
        from repro.solver.problem import Constraint

        return Constraint(self - LinExpr.coerce(other), ">=")

    def __eq__(self, other: object):  # type: ignore[override]
        from repro.solver.problem import Constraint

        return Constraint(self - LinExpr.coerce(other), "==")

    def __hash__(self) -> int:  # required because __eq__ is overloaded
        return id(self)

    def __repr__(self) -> str:
        terms = " + ".join(f"{coeff:g}*x{index}" for index, coeff in sorted(self.coeffs.items()))
        if not terms:
            return f"LinExpr({self.constant:g})"
        if self.constant:
            return f"LinExpr({terms} + {self.constant:g})"
        return f"LinExpr({terms})"


def dot(coefficients: Sequence[Scalar] | np.ndarray, variables: Iterable[Variable]) -> LinExpr:
    """Inner product of a numeric vector with a vector of variables.

    This is the fast path for building expressions like ``W_l . x_l``: it
    avoids the quadratic cost of repeated ``LinExpr.__add__`` calls.
    """
    coeff_array = np.asarray(coefficients, dtype=float).ravel()
    variable_list = list(variables)
    if coeff_array.shape[0] != len(variable_list):
        raise ModelError(
            f"dot length mismatch: {coeff_array.shape[0]} coefficients "
            f"vs {len(variable_list)} variables"
        )
    coeffs: Dict[int, float] = {}
    for coeff, variable in zip(coeff_array, variable_list):
        if coeff == 0.0:
            continue
        coeffs[variable.index] = coeffs.get(variable.index, 0.0) + float(coeff)
    return LinExpr(coeffs, 0.0)


def lin_sum(terms: Iterable[ExprLike]) -> LinExpr:
    """Sum of expressions, variables, and scalars (linear-time)."""
    coeffs: Dict[int, float] = {}
    constant = 0.0
    for term in terms:
        expr = LinExpr.coerce(term)
        constant += expr.constant
        for index, coeff in expr.coeffs.items():
            coeffs[index] = coeffs.get(index, 0.0) + coeff
    return LinExpr(coeffs, constant)
