"""A process-wide cache of compiled :class:`StandardForm` objects.

``LinearProgram.compile`` now memoises per program *object*, but the OEF
allocators construct a fresh program per request — a scenario replay that
solves the same instance shape round after round still paid full
Python-level assembly every time.  This module closes that gap: allocators
that build their standard forms directly (the vectorized builders in
:mod:`repro.core`) key them here by a **content fingerprint** of the
arrays that determine the form (speedup matrix, capacities, options), so
repeat rounds skip assembly entirely.

Cached forms are shared between callers and must be treated as immutable
— every consumer in this repository already is (backends read, never
write), which is what makes the sharing safe.

The cache is a small thread-safe LRU; eviction keeps memory bounded when
a fleet-scale sweep touches thousands of distinct instances.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Callable, Tuple

import numpy as np

from repro.solver.problem import StandardForm


def fingerprint_arrays(*arrays: np.ndarray, extra: Tuple = ()) -> str:
    """Content hash of numeric arrays plus a hashable ``extra`` tag.

    The tag disambiguates builders that share array inputs (e.g. the same
    instance compiled by two allocators, or with different options).
    """
    digest = hashlib.sha256()
    for array in arrays:
        data = np.ascontiguousarray(np.asarray(array))
        digest.update(str(data.dtype).encode())
        digest.update(str(data.shape).encode())
        digest.update(data.tobytes())
    digest.update(repr(extra).encode())
    return digest.hexdigest()


class FormCache:
    """Thread-safe LRU of compiled standard forms keyed by fingerprint."""

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, StandardForm]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self, key: str, builder: Callable[[], StandardForm]
    ) -> StandardForm:
        """Cached form for ``key``, building (outside the lock) on a miss."""
        with self._lock:
            form = self._entries.get(key)
            if form is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return form
            self.misses += 1
        form = builder()
        with self._lock:
            self._entries[key] = form
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return form

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Shared instance used by the allocators' direct form builders.
FORM_CACHE = FormCache()

__all__ = ["FORM_CACHE", "FormCache", "fingerprint_arrays"]
