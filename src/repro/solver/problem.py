"""The :class:`LinearProgram` model object and its standard-form compiler.

A program collects variables, constraints, and one objective, then compiles
to :class:`StandardForm` — the exact shape that both backends (scipy HiGHS
and the in-repo simplex) consume:

    minimise    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lower <= x <= upper   (element-wise; None = unbounded)

Maximisation is handled by negating ``c`` at compile time and the objective
value at read-back time.

Two constraint-building paths are supported:

* expression constraints via ``lp.add_constraint(expr <= rhs)`` — readable,
  used for small programs and examples;
* bulk matrix rows via :meth:`LinearProgram.add_matrix_constraints` — the
  fast path used by the OEF allocators.  Blocks may be dense numpy arrays
  or ``scipy.sparse`` matrices; the cooperative OEF formulation has
  O(n^2) envy rows, which must stay sparse at the scale of the paper's
  overhead experiment (Fig. 10a, 300 users x 10 GPU types).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import sparse

from repro.exceptions import (
    InfeasibleError,
    ModelError,
    SolverError,
    UnboundedError,
)
from repro.solver.expression import LinExpr, Variable
from repro.solver.result import Solution, SolveStats

_SENSES = ("<=", ">=", "==")

MatrixLike = Union[np.ndarray, sparse.spmatrix]

# Above this many cells, inequality/equality systems are kept sparse.
_DENSE_CELL_LIMIT = 4_000_000


class Constraint:
    """A single linear constraint ``expr (sense) 0``.

    Stored in homogeneous form: the right-hand side has already been moved
    into the expression's constant, so the constraint reads
    ``coeffs @ x + constant <= 0`` (or ``>=``/``==``).
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = ""):
        if sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense} 0)"


@dataclass
class _MatrixBlock:
    """Bulk constraints: ``matrix @ block_vars (sense) rhs`` row-wise."""

    matrix: MatrixLike
    column_indices: np.ndarray
    sense: str
    rhs: np.ndarray


@dataclass
class StandardForm:
    """Matrix form consumed by LP backends (minimisation convention).

    ``a_ub``/``a_eq`` may be dense ndarrays or scipy sparse matrices; the
    scipy backend passes either through, and the simplex backend densifies.
    """

    c: np.ndarray
    a_ub: Optional[MatrixLike]
    b_ub: Optional[np.ndarray]
    a_eq: Optional[MatrixLike]
    b_eq: Optional[np.ndarray]
    bounds: List[Tuple[Optional[float], Optional[float]]]
    maximise: bool
    offset: float = 0.0

    @property
    def num_variables(self) -> int:
        return int(self.c.shape[0])


@dataclass
class _Objective:
    expr: LinExpr
    maximise: bool


def _as_coo(matrix: MatrixLike) -> sparse.coo_matrix:
    if sparse.issparse(matrix):
        return matrix.tocoo()
    return sparse.coo_matrix(np.atleast_2d(np.asarray(matrix, dtype=float)))


class LinearProgram:
    """A declarative linear program, in the spirit of cvxpy's interface."""

    def __init__(self, name: str = "lp"):
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []
        self._matrix_blocks: List[_MatrixBlock] = []
        self._objective: Optional[_Objective] = None
        # compiled StandardForms per sparse_always flag; cleared on any
        # model mutation so solve() never re-assembles an unchanged program
        self._compiled: dict = {}

    def _invalidate(self) -> None:
        self._compiled.clear()

    # -- variables --------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        rows = len(self._constraints)
        rows += sum(block.matrix.shape[0] for block in self._matrix_blocks)
        return rows

    def new_variable(
        self,
        name: str,
        lower: Optional[float] = 0.0,
        upper: Optional[float] = None,
    ) -> Variable:
        """Create one scalar variable (default bounds: ``x >= 0``)."""
        if lower is not None and upper is not None and lower > upper:
            raise ModelError(f"variable {name!r}: lower bound {lower} > upper bound {upper}")
        variable = Variable(len(self._variables), name, lower, upper)
        self._variables.append(variable)
        self._invalidate()
        return variable

    def new_variable_array(
        self,
        name: str,
        shape: int | Tuple[int, ...],
        lower: Optional[float] = 0.0,
        upper: Optional[float] = None,
    ) -> np.ndarray:
        """Create an ndarray of scalar variables with a shared bound spec."""
        if isinstance(shape, int):
            shape = (shape,)
        array = np.empty(shape, dtype=object)
        for index in np.ndindex(*shape):
            suffix = ",".join(str(i) for i in index)
            array[index] = self.new_variable(f"{name}[{suffix}]", lower, upper)
        return array

    # -- constraints ------------------------------------------------------
    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "add_constraint expects a Constraint (build one with <=, >= or ==)"
            )
        if name:
            constraint.name = name
        self._check_indices(constraint.expr)
        self._constraints.append(constraint)
        self._invalidate()
        return constraint

    def add_constraints(self, constraints: Sequence[Constraint]) -> None:
        for constraint in constraints:
            self.add_constraint(constraint)

    def add_matrix_constraints(
        self,
        matrix: MatrixLike,
        variables: Sequence[Variable],
        sense: str,
        rhs: np.ndarray | Sequence[float] | float,
    ) -> None:
        """Add ``matrix @ variables (sense) rhs`` as a block of rows.

        ``matrix`` is ``(rows, len(variables))``, dense or scipy-sparse;
        ``rhs`` broadcasts to ``rows``.
        """
        if sense not in _SENSES:
            raise ModelError(f"unknown constraint sense {sense!r}")
        if not sparse.issparse(matrix):
            matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        column_indices = np.asarray([variable.index for variable in variables], dtype=int)
        if matrix.shape[1] != column_indices.shape[0]:
            raise ModelError(
                f"matrix has {matrix.shape[1]} columns but {column_indices.shape[0]} "
                "variables were supplied"
            )
        if column_indices.size and (
            column_indices.min() < 0 or column_indices.max() >= self.num_variables
        ):
            raise ModelError("constraint references a variable from another program")
        # index bounds alone cannot catch a foreign variable whose index
        # happens to be small; the handle identity can (mirrors
        # _check_indices, which only sees bare indices)
        own = self._variables
        if any(own[variable.index] is not variable for variable in variables):
            raise ModelError("constraint references a variable from another program")
        rhs_array = np.broadcast_to(np.asarray(rhs, dtype=float), (matrix.shape[0],)).copy()
        self._matrix_blocks.append(_MatrixBlock(matrix, column_indices, sense, rhs_array))
        self._invalidate()

    def _check_indices(self, expr: LinExpr) -> None:
        for index in expr.coeffs:
            if index >= self.num_variables or index < 0:
                raise ModelError("expression references a variable from another program")

    # -- objective ---------------------------------------------------------
    def set_objective(self, expr: LinExpr | Variable | float, sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ModelError(f"objective sense must be 'min' or 'max', got {sense!r}")
        expression = LinExpr.coerce(expr)
        self._check_indices(expression)
        self._objective = _Objective(expression, maximise=(sense == "max"))
        self._invalidate()

    # -- compile ------------------------------------------------------------
    def compile(self, *, sparse_always: bool = False) -> StandardForm:
        """Assemble the minimisation standard form for the backends.

        ``sparse_always=True`` keeps the constraint systems as scipy
        sparse matrices regardless of the ``_DENSE_CELL_LIMIT``
        densification heuristic — the right call for structurally sparse
        programs (the OEF envy systems) that happen to fall under the
        cell limit.

        Compilation is memoised: repeated calls on an unchanged program
        (e.g. ``solve()`` on every warm round) return the same
        :class:`StandardForm` without re-assembly.  Any mutation —
        new variable, constraint, or objective — invalidates the cache.
        """
        cached = self._compiled.get(sparse_always)
        if cached is not None:
            return cached
        if self._objective is None:
            raise ModelError("no objective set; call set_objective() first")
        num_vars = self.num_variables

        c = np.zeros(num_vars)
        for index, coeff in self._objective.expr.coeffs.items():
            c[index] += coeff
        offset = self._objective.expr.constant
        if self._objective.maximise:
            c = -c

        # collect (coo_block, rhs, negate) pieces per system
        ub_pieces: List[Tuple[sparse.coo_matrix, np.ndarray]] = []
        eq_pieces: List[Tuple[sparse.coo_matrix, np.ndarray]] = []

        if self._constraints:
            rows_idx: List[int] = []
            cols_idx: List[int] = []
            data: List[float] = []
            senses: List[str] = []
            rhs_vals: List[float] = []
            for row_number, constraint in enumerate(self._constraints):
                for index, coeff in constraint.expr.coeffs.items():
                    rows_idx.append(row_number)
                    cols_idx.append(index)
                    data.append(coeff)
                senses.append(constraint.sense)
                rhs_vals.append(-constraint.expr.constant)
            expr_matrix = sparse.coo_matrix(
                (data, (rows_idx, cols_idx)),
                shape=(len(self._constraints), num_vars),
            ).tocsr()
            senses_arr = np.asarray(senses)
            rhs_arr = np.asarray(rhs_vals)
            for sense, flip in (("<=", 1.0), (">=", -1.0)):
                mask = senses_arr == sense
                if mask.any():
                    ub_pieces.append((flip * expr_matrix[mask], flip * rhs_arr[mask]))
            eq_mask = senses_arr == "=="
            if eq_mask.any():
                eq_pieces.append((expr_matrix[eq_mask], rhs_arr[eq_mask]))

        for block in self._matrix_blocks:
            coo = _as_coo(block.matrix)
            expanded = sparse.coo_matrix(
                (coo.data, (coo.row, block.column_indices[coo.col])),
                shape=(block.matrix.shape[0], num_vars),
            )
            if block.sense == "<=":
                ub_pieces.append((expanded, block.rhs))
            elif block.sense == ">=":
                ub_pieces.append((-expanded, -block.rhs))
            else:
                eq_pieces.append((expanded, block.rhs))

        def _assemble(pieces):
            if not pieces:
                return None, None
            matrix = sparse.vstack([piece for piece, _rhs in pieces], format="csr")
            rhs = np.concatenate([rhs for _piece, rhs in pieces])
            if (
                not sparse_always
                and matrix.shape[0] * matrix.shape[1] <= _DENSE_CELL_LIMIT
            ):
                return matrix.toarray(), rhs
            return matrix, rhs

        a_ub, b_ub = _assemble(ub_pieces)
        a_eq, b_eq = _assemble(eq_pieces)

        bounds = [(variable.lower, variable.upper) for variable in self._variables]
        form = StandardForm(
            c=c,
            a_ub=a_ub,
            b_ub=b_ub,
            a_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            maximise=self._objective.maximise,
            offset=offset,
        )
        self._compiled[sparse_always] = form
        return form

    # -- solve ---------------------------------------------------------------
    def solve(
        self, backend: str = "auto", warm_start=None, *, sparse_always: bool = False
    ) -> Solution:
        """Compile and solve; returns a :class:`Solution`.

        ``backend`` is ``"scipy"``, ``"simplex"`` or ``"auto"``.  ``auto``
        runs scipy's HiGHS and, should HiGHS fail for a reason other than
        a provably infeasible/unbounded program, retries with the in-repo
        :class:`~repro.solver.simplex.SimplexBackend` — the self-contained
        fallback.  ``solution.stats.backend`` records the backend that
        actually produced the answer.

        ``warm_start`` accepts the ``warm_state`` of a prior
        :class:`~repro.solver.result.Solution` for a structurally
        identical program.  The state is verified against this program's
        numbers before it is trusted (see :mod:`repro.solver.warm`); on
        a miss the solve silently runs cold, so warm starting never
        changes an answer.  ``solution.stats.warm_start_used`` reports
        which path produced the result, and ``solution.warm_state``
        carries this solve's own evidence forward.
        """
        form = self.compile(sparse_always=sparse_always)
        return solve_form(
            form,
            backend=backend,
            warm_start=warm_start,
            num_constraints=self.num_constraints,
        )


def solve_form(
    form: StandardForm,
    backend: str = "auto",
    warm_start=None,
    num_constraints: Optional[int] = None,
) -> Solution:
    """Solve an already-compiled :class:`StandardForm`.

    The backend-dispatch half of :meth:`LinearProgram.solve`, exposed so
    callers that assemble standard forms directly (the OEF allocators'
    vectorized builders, the batch solver) share one solve path —
    including the ``auto`` fallback contract: try scipy HiGHS, and on a
    :class:`~repro.exceptions.SolverError` that is *not* a definitive
    infeasible/unbounded verdict, retry with the self-contained simplex,
    recording whichever backend produced the answer in
    ``solution.stats.backend``.
    """
    from repro.solver.scipy_backend import ScipyBackend
    from repro.solver.simplex import SimplexBackend

    start = time.perf_counter()
    if backend == "auto":
        backend_used = "scipy"
        try:
            values, warm_state, warm_used = ScipyBackend().solve_with_state(
                form, warm_start
            )
        except (InfeasibleError, UnboundedError):
            raise  # definitive verdicts, not backend failures
        except SolverError:
            backend_used = "simplex"
            values, warm_state, warm_used = SimplexBackend().solve_with_state(
                form, warm_start
            )
    else:
        if backend == "scipy":
            solver = ScipyBackend()
        elif backend == "scipy-ipm":
            solver = ScipyBackend(method="highs-ipm")
        elif backend == "simplex":
            solver = SimplexBackend()
        else:
            raise ModelError(f"unknown backend {backend!r}")
        backend_used = backend
        values, warm_state, warm_used = solver.solve_with_state(form, warm_start)
    elapsed = time.perf_counter() - start

    raw_objective = float(form.c @ values)
    objective = (-raw_objective if form.maximise else raw_objective) + form.offset
    rows = 0 if form.a_ub is None else int(form.a_ub.shape[0])
    rows += 0 if form.a_eq is None else int(form.a_eq.shape[0])
    stats = SolveStats(
        backend=backend_used,
        solve_seconds=elapsed,
        num_variables=form.num_variables,
        num_constraints=rows if num_constraints is None else num_constraints,
        warm_start_used=warm_used,
    )
    return Solution(
        values=values,
        objective=objective,
        stats=stats,
        warm_state=warm_state,
    )
