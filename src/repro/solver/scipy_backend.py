"""LP backend built on :func:`scipy.optimize.linprog` (HiGHS).

This is the default production backend: HiGHS handles the cooperative OEF
program (O(n^2) envy constraints) at the cluster sizes used in the paper's
Fig. 10(a) without breaking a sweat.

Warm starting mirrors the simplex backend's contract
(:mod:`repro.solver.warm`): ``solve(form, warm_start=prior_state)``
re-verifies the prior certificate against the new numbers and returns the
verified point without calling HiGHS at all; anything unverifiable falls
back to a cold HiGHS solve.  HiGHS itself exposes no basis hand-off
through scipy, so the state this backend *produces* is the KKT flavour —
the optimal point plus the row marginals the solver already computed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.solver.problem import StandardForm
from repro.solver.warm import (
    WarmStartState,
    form_signature,
    refresh_state,
    try_warm_solve,
)


class ScipyBackend:
    """Solve a :class:`StandardForm` with HiGHS; returns the variable vector."""

    def __init__(self, method: str = "highs"):
        self.method = method

    def solve(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> np.ndarray:
        values, _state, _used = self.solve_with_state(form, warm_start)
        return values

    def solve_with_state(
        self, form: StandardForm, warm_start: Optional[WarmStartState] = None
    ) -> Tuple[np.ndarray, Optional[WarmStartState], bool]:
        """Solve and return ``(values, state, warm_start_used)``.

        The returned state carries the optimal point and the HiGHS row
        marginals (converted to the ``mu >= 0`` minimisation convention)
        so a structurally identical successor program can skip the solver
        when the certificate still verifies.
        """
        if warm_start is not None:
            values = try_warm_solve(form, warm_start)
            if values is not None:
                return values, refresh_state(warm_start, form, values), True
        result = linprog(
            c=form.c,
            A_ub=form.a_ub,
            b_ub=form.b_ub,
            A_eq=form.a_eq,
            b_eq=form.b_eq,
            bounds=form.bounds,
            method=self.method,
        )
        if result.status == 2:
            raise InfeasibleError(f"linear program infeasible: {result.message}")
        if result.status == 3:
            raise UnboundedError(f"linear program unbounded: {result.message}")
        if not result.success:
            raise SolverError(f"scipy linprog failed (status={result.status}): {result.message}")
        values = np.asarray(result.x, dtype=float)
        state = self._state_from_result(form, values, result)
        return values, state, False

    @staticmethod
    def _state_from_result(
        form: StandardForm, values: np.ndarray, result
    ) -> Optional[WarmStartState]:
        """KKT-flavour state from a HiGHS result (None if marginals absent)."""
        try:
            dual_ub = (
                None
                if form.a_ub is None
                else -np.asarray(result.ineqlin.marginals, dtype=float)
            )
            dual_eq = (
                None
                if form.a_eq is None
                else -np.asarray(result.eqlin.marginals, dtype=float)
            )
        except AttributeError:  # pragma: no cover - non-HiGHS methods
            return None
        return WarmStartState(
            signature=form_signature(form),
            primal=values.copy(),
            dual_ub=dual_ub,
            dual_eq=dual_eq,
        )
