"""LP backend built on :func:`scipy.optimize.linprog` (HiGHS).

This is the default production backend: HiGHS handles the cooperative OEF
program (O(n^2) envy constraints) at the cluster sizes used in the paper's
Fig. 10(a) without breaking a sweat.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import InfeasibleError, SolverError, UnboundedError
from repro.solver.problem import StandardForm


class ScipyBackend:
    """Solve a :class:`StandardForm` with HiGHS; returns the variable vector."""

    def __init__(self, method: str = "highs"):
        self.method = method

    def solve(self, form: StandardForm) -> np.ndarray:
        result = linprog(
            c=form.c,
            A_ub=form.a_ub,
            b_ub=form.b_ub,
            A_eq=form.a_eq,
            b_eq=form.b_eq,
            bounds=form.bounds,
            method=self.method,
        )
        if result.status == 2:
            raise InfeasibleError(f"linear program infeasible: {result.message}")
        if result.status == 3:
            raise UnboundedError(f"linear program unbounded: {result.message}")
        if not result.success:
            raise SolverError(f"scipy linprog failed (status={result.status}): {result.message}")
        return np.asarray(result.x, dtype=float)
