"""repro.gateway: the middleware-pipeline service API.

The paper models the scheduler as a *middleware service*; this package
is that service's front door.  A :class:`Gateway` composes an explicit
chain of :class:`Middleware` stages — admission control, latency
metrics, in-flight coalescing, verified warm starts, the content-hash
cache, and the terminal registry solver — behind a stable, typed
:class:`Request`/:class:`Response` envelope.  Stages can be reordered,
disabled, or extended (``Gateway.use(my_stage, before="solver")``)
without touching the service internals; the legacy
:class:`repro.service.SchedulingService` facade is a thin shim over a
gateway built by :func:`default_pipeline`.

See ``docs/middleware.md`` for the pipeline diagram, the stage-ordering
contract, and a guide to writing custom stages.

Quick start::

    from repro.gateway import Gateway, default_pipeline

    gateway = Gateway(default_pipeline())
    response = gateway.solve(instance, "oef-coop")
    response.allocation          # the Allocation
    response.disposition         # "cold" | "cache-hit" | "warm-structural" | ...
    gateway.cache_info()         # aggregated CacheStats
"""

from repro.gateway.envelope import (
    DISPOSITIONS,
    Overloaded,
    Request,
    Response,
    deadline_in,
    instance_fingerprint,
    options_key,
    structural_fingerprint,
)
from repro.gateway.gateway import Gateway, bare_pipeline, default_pipeline
from repro.gateway.middleware import (
    AdmissionMiddleware,
    CacheMiddleware,
    CacheStats,
    CoalesceMiddleware,
    MetricsMiddleware,
    Middleware,
    SolverMiddleware,
    WarmStartMiddleware,
)

__all__ = [
    "AdmissionMiddleware",
    "CacheMiddleware",
    "CacheStats",
    "CoalesceMiddleware",
    "DISPOSITIONS",
    "Gateway",
    "MetricsMiddleware",
    "Middleware",
    "Overloaded",
    "Request",
    "Response",
    "SolverMiddleware",
    "WarmStartMiddleware",
    "bare_pipeline",
    "deadline_in",
    "default_pipeline",
    "instance_fingerprint",
    "options_key",
    "structural_fingerprint",
]
