"""Built-in middleware stages: the composable layers of the gateway.

A middleware is one object with one method::

    class Middleware:
        def handle(self, request: Request, next) -> Response: ...

``next`` is the downstream remainder of the pipeline; a stage may answer
without calling it (cache hit, admission shed), derive a modified
request on the way down (warm-state injection), or derive a modified
response on the way up (counter snapshots).  Stages hold their own state
under their own locks, so any subset composes in any order — the
pipeline-permutation property test asserts that every ordering of the
optimisation stages around the terminal solver yields bit-identical
allocations.

Built-ins, outermost-first in :func:`repro.gateway.default_pipeline`:

=====================  =====================================================
:class:`AdmissionMiddleware`  max in-flight bound + deadline shedding, typed
                              :class:`~repro.gateway.envelope.Overloaded`
:class:`MetricsMiddleware`    per-disposition and per-stage latency
                              histograms (feeds ``repro bench``)
:class:`CoalesceMiddleware`   dedupes identical in-flight requests — the
                              follower waits for the leader and re-enters
                              the chain (hitting the cache below)
:class:`WarmStartMiddleware`  PR 4's verified exact/structural warm tiers
:class:`CacheMiddleware`      the content-hash LRU + :class:`CacheStats`
:class:`SolverMiddleware`     terminal: constructs the scheduler from the
                              registry and runs the allocation
=====================  =====================================================

Ordering contract (see ``docs/middleware.md``): Admission should be
outermost (shed before any work), Coalesce must sit above Cache (so a
coalesced follower's retry is a cache hit), WarmStart must sit above
Cache (so an exact-tier hit still carries a chainable warm state), and
the terminal solver is always last.  Correctness never depends on the
order — only counters and latency do.

:class:`CacheMiddleware` is deliberately generic: subclasses override
``_key`` / ``_entry`` / ``_revive`` to cache payloads other than
allocations.  The cluster simulator's warm decision memo is exactly such
a subclass (see :mod:`repro.cluster.simulator`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.allocation import Allocation
from repro.gateway.envelope import (
    Overloaded,
    Request,
    Response,
    instance_fingerprint,
    options_key,
    structural_fingerprint,
)
from repro.registry import SchedulerRegistry

#: Signature of the downstream remainder of a pipeline.
Handler = Callable[[Request], Response]

#: Bound on retained warm-start states (separate from the LRU bound the
#: allocation and frontier caches share: states are small and structural
#: keys are few, so a fixed bound suffices).
MAX_WARM_STATES = 256


def _default_registry() -> SchedulerRegistry:
    from repro.registry import REGISTRY

    return REGISTRY


def derive_key(request: Request, registry: SchedulerRegistry) -> object:
    """The canonical cache identity of an allocation request.

    ``(instance fingerprint, canonical scheduler, frozen options)`` —
    the one rule shared by the cache stage, the coalesce stage, the
    gateway's normalisation, and the batch planner, so an entry stored
    by any of them is found by all of them.  Raises ``TypeError`` for
    option values that cannot be content-hashed.
    """
    return (
        request.fingerprint or instance_fingerprint(request.instance),
        registry.resolve(request.scheduler),
        options_key(request.options),
    )


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of the pipeline's cache counters.

    ``hits``/``misses`` account every solve-shaped call against the exact
    (content-hash) cache stage.  The warm-tier counters refine the
    picture for incremental requests:

    * ``warm_hits`` — incremental requests answered from the exact cache
      without running any allocator ("exact hash → reuse allocation");
    * ``structural_hits`` — requests where the allocator ran but its LP
      accepted the verified prior state instead of solving cold
      ("structural hash → reuse basis"); these also count as ``misses``
      because the exact cache did not have the answer;
    * ``evictions`` — LRU evictions across the allocation, auxiliary
      (frontier), and warm-state stores combined.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    warm_hits: int = 0
    structural_hits: int = 0
    evictions: int = 0
    #: Retained warm-start states (bounded separately from ``entries``).
    warm_entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Middleware:
    """Base class / protocol for one pipeline stage."""

    #: Stable stage name used in timings, ``repro list-middleware``,
    #: and ``Gateway.use(before=...)`` lookups.
    name: str = "middleware"

    def handle(self, request: Request, next: Handler) -> Response:
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """One printable capability row for ``repro list-middleware``."""
        return {
            "stage": self.name,
            "class": type(self).__name__,
            "caches": "no",
            "sheds": "no",
            "stateful": "no",
            "terminal": "no",
        }

    def reset(self) -> None:
        """Drop accumulated state/counters (cache clear, test isolation)."""


class SolverMiddleware(Middleware):
    """Terminal stage: construct the scheduler and run the allocation.

    Dispatches through the scheduler registry, so aliases resolve and
    new allocators appear the moment they self-register.  Incremental
    requests route through ``allocate_with_state`` — the solver then
    *verifies* any injected warm state before trusting it (see
    :mod:`repro.solver.warm`) and returns fresh evidence for the next
    round — while plain requests take the cold ``allocate`` path.
    """

    name = "solver"

    def __init__(self, registry: Optional[SchedulerRegistry] = None):
        self.registry = registry if registry is not None else _default_registry()

    def handle(self, request: Request, next: Handler) -> Response:
        info = self.registry.info(request.scheduler)
        allocator = info.factory(**dict(request.options))
        fingerprint = request.fingerprint or instance_fingerprint(request.instance)
        start = time.perf_counter()
        if request.incremental:
            allocation, new_state, warm_used = allocator.allocate_with_state(
                request.instance, request.warm_state
            )
        else:
            allocation, new_state, warm_used = allocator.allocate(request.instance), None, False
        elapsed = time.perf_counter() - start
        return Response(
            scheduler=info.name,
            allocation=allocation,
            result=allocation,
            fingerprint=fingerprint,
            disposition="warm-structural" if warm_used else "cold",
            solve_seconds=elapsed,
            warm=warm_used,
            warm_state=new_state,
        )

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row.update(terminal="yes", schedulers=len(self.registry))
        return row


class CacheMiddleware(Middleware):
    """Content-addressed LRU over solved requests (the exact tier).

    Keys on ``Request.key`` when set, else on ``(instance fingerprint,
    canonical scheduler, frozen options)``.  Cached matrices are copied
    on both insert and lookup, so callers can never poison the cache by
    mutating a returned allocation.  One LRU bound (``max_entries``)
    covers the primary store and the auxiliary store (the service
    facade's frontier memo) combined.

    Threading: one re-entrant lock guards the stores and counters;
    lookups, inserts, LRU reordering, and trims happen under it while
    the downstream solve runs *outside* it, so concurrent solves
    overlap.  ``use_cache=False`` requests still count as misses (the
    legacy service contract), they just never touch the stores.

    Subclass hooks for non-allocation payloads: ``_key(request)``
    derives the identity, ``_entry(request, response)`` the stored
    value, ``_revive(entry, request)`` the served response.
    """

    name = "cache"

    def __init__(
        self,
        registry: Optional[SchedulerRegistry] = None,
        max_entries: int = 4096,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.registry = registry if registry is not None else _default_registry()
        self.max_entries = max_entries
        self._store: "OrderedDict[object, Any]" = OrderedDict()
        self._aux: "OrderedDict[object, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._warm_hits = 0
        self._evictions = 0
        #: Guards both stores and all counters.  Public so the gateway's
        #: batch planner can compound lookups/inserts atomically via the
        #: ``*_unlocked`` primitives.
        self.lock = threading.RLock()

    # -- subclass hooks ----------------------------------------------------
    def _key(self, request: Request) -> object:
        return derive_key(request, self.registry)

    def _entry(self, request: Request, response: Response) -> object:
        allocation = response.allocation
        return (
            allocation.matrix.copy(),
            allocation.allocator_name or response.scheduler,
            response.fingerprint,
            response.scheduler,
        )

    def _revive(self, entry: object, request: Request) -> Response:
        matrix, allocator_name, fingerprint, canonical = entry
        allocation = Allocation(
            matrix.copy(), request.instance, allocator_name=allocator_name
        )
        return Response(
            scheduler=canonical,
            allocation=allocation,
            result=allocation,
            fingerprint=fingerprint,
            disposition="cache-hit",
            solve_seconds=0.0,
        )

    # -- the stage ---------------------------------------------------------
    def handle(self, request: Request, next: Handler) -> Response:
        if request.use_cache:
            key = request.key if request.key is not None else self._key(request)
        else:
            key = None

        if key is not None:
            with self.lock:
                entry = self._store.get(key)
                if entry is not None:
                    self._store.move_to_end(key)
                    self._hits += 1
                    if request.incremental:
                        self._warm_hits += 1
                    hits, misses = self._hits, self._misses
            if entry is not None:
                response = self._revive(entry, request)
                return replace(response, cache_hits=hits, cache_misses=misses)

        # count the miss before the solver runs (legacy service parity:
        # concurrent callers each account exactly one hit or miss)
        with self.lock:
            self._misses += 1
        response = next(request)
        if not response.ok:
            return response
        with self.lock:
            if key is not None:
                self._store[key] = self._entry(request, response)
                self._trim(self._store)
            hits, misses = self._hits, self._misses
        return replace(response, cache_hits=hits, cache_misses=misses)

    # -- auxiliary store (service frontier memo) ---------------------------
    def aux_lookup(self, key: object) -> Optional[Any]:
        """Counted lookup in the auxiliary store (shares the LRU bound)."""
        with self.lock:
            value = self._aux.get(key)
            if value is not None:
                self._aux.move_to_end(key)
                self._hits += 1
                return value
            self._misses += 1
            return None

    def aux_store(self, key: object, value: Any) -> None:
        with self.lock:
            self._aux[key] = value
            self._trim(self._aux)

    # -- batch-planner primitives (call under ``self.lock``) ---------------
    def get_unlocked(self, key: object) -> Optional[Any]:
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
        return entry

    def contains_unlocked(self, key: object) -> bool:
        return key in self._store

    def insert_unlocked(self, key: object, entry: object) -> None:
        self._store[key] = entry
        self._trim(self._store)

    def note_hit_unlocked(self, incremental: bool = False) -> Tuple[int, int]:
        self._hits += 1
        if incremental:
            self._warm_hits += 1
        return self._hits, self._misses

    def note_miss_unlocked(self) -> Tuple[int, int]:
        self._misses += 1
        return self._hits, self._misses

    # -- maintenance -------------------------------------------------------
    def _trim(self, target: OrderedDict) -> None:
        # evict from the store just inserted into until the combined size
        # fits the bound again (inserts grow by one, so this suffices)
        while (
            len(self._store) + len(self._aux) > self.max_entries and target
        ):
            target.popitem(last=False)
            self._evictions += 1

    def __len__(self) -> int:
        """Current entry count (primary + auxiliary stores)."""
        with self.lock:
            return len(self._store) + len(self._aux)

    def invalidate(self) -> int:
        """Drop every entry, keep the counters; returns entries dropped."""
        with self.lock:
            dropped = len(self._store) + len(self._aux)
            self._store.clear()
            self._aux.clear()
            return dropped

    def reset(self) -> None:
        with self.lock:
            self._store.clear()
            self._aux.clear()
            self._hits = 0
            self._misses = 0
            self._warm_hits = 0
            self._evictions = 0

    def stats(self) -> Dict[str, int]:
        with self.lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "warm_hits": self._warm_hits,
                "evictions": self._evictions,
                "entries": len(self._store) + len(self._aux),
                "max_entries": self.max_entries,
            }

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        snapshot = self.stats()
        row.update(
            caches="yes",
            stateful="yes",
            detail=f"LRU {snapshot['entries']}/{snapshot['max_entries']}",
        )
        return row


class WarmStartMiddleware(Middleware):
    """PR 4's verified warm-start tiers as a composable stage.

    Engages only for ``incremental`` requests.  On the way down it
    selects a candidate :class:`~repro.solver.warm.WarmStartState` —
    the caller's ``prev_result`` when it matches, else this stage's own
    structural store — and injects it into the request for the terminal
    solver, which *verifies* the state before trusting it (warm answers
    therefore always equal cold answers to solver tolerance).  On the
    way up it banks the solve's fresh state under the structural key and
    counts ``structural_hits`` when the LP actually accepted the warm
    start.  Placed above the cache stage so an exact-tier hit still
    carries a chainable state.
    """

    name = "warm-start"

    def __init__(
        self,
        registry: Optional[SchedulerRegistry] = None,
        max_states: int = MAX_WARM_STATES,
    ):
        self.registry = registry if registry is not None else _default_registry()
        self.max_states = max_states
        self._states: "OrderedDict[object, Any]" = OrderedDict()
        self._structural_hits = 0
        self._evictions = 0
        self._lock = threading.RLock()

    def handle(self, request: Request, next: Handler) -> Response:
        if not request.incremental:
            return next(request)
        info = self.registry.info(request.scheduler)
        struct_key = (
            structural_fingerprint(request.instance),
            info.name,
            options_key(request.options),
        )
        state = None
        if info.warm_startable:
            prev = request.prev_result
            prev_state = getattr(prev, "warm_state", None)
            if prev_state is not None and getattr(prev, "scheduler", None) == info.name:
                state = prev_state
            else:
                with self._lock:
                    state = self._states.get(struct_key)
                    if state is not None:
                        # keep the actively chained state LRU-fresh
                        self._states.move_to_end(struct_key)
            if state is not None and request.warm_state is None:
                request = replace(request, warm_state=state)
        response = next(request)
        with self._lock:
            if response.warm:
                self._structural_hits += 1
            if response.warm_state is not None:
                self._states[struct_key] = response.warm_state
                self._states.move_to_end(struct_key)
                while len(self._states) > self.max_states:
                    self._states.popitem(last=False)
                    self._evictions += 1
        if response.warm_state is None and state is not None and response.ok:
            # exact-tier hits still hand the caller a chainable state
            response = replace(response, warm_state=state)
        return response

    def reset(self) -> None:
        with self._lock:
            self._states.clear()
            self._structural_hits = 0
            self._evictions = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "structural_hits": self._structural_hits,
                "evictions": self._evictions,
                "warm_entries": len(self._states),
            }

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row.update(
            caches="yes",
            stateful="yes",
            detail=f"states {len(self._states)}/{self.max_states}",
        )
        return row


class CoalesceMiddleware(Middleware):
    """Dedupe identical in-flight requests across threads and batches.

    The first thread to ask a given cache key becomes the *leader* and
    solves normally; concurrent followers with the same key block until
    the leader finishes, then re-enter the downstream chain — which is a
    cache hit when a cache stage sits below (the default pipeline), and
    a correct independent solve otherwise.  ``wait_timeout`` bounds the
    wait so a wedged leader can never deadlock followers.  The gateway's
    parallel batch planner reuses the same identity rule to solve
    duplicate requests once per batch and reports them here via
    :meth:`note_coalesced`.
    """

    name = "coalesce"

    def __init__(
        self,
        registry: Optional[SchedulerRegistry] = None,
        wait_timeout: float = 30.0,
    ):
        self.registry = registry if registry is not None else _default_registry()
        self.wait_timeout = wait_timeout
        self._inflight: Dict[object, threading.Event] = {}
        self._coalesced = 0
        self._lock = threading.Lock()

    def handle(self, request: Request, next: Handler) -> Response:
        if not request.use_cache:
            return next(request)
        key = request.key
        if key is None:
            try:
                key = derive_key(request, self.registry)
            except TypeError:
                return next(request)
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                event = threading.Event()
                self._inflight[key] = event
                leader = True
            else:
                leader = False
        if leader:
            try:
                return next(request)
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()
        # count a successful dedup only when the leader actually finished;
        # a timed-out wait falls through to an ordinary duplicate solve
        if event.wait(self.wait_timeout):
            with self._lock:
                self._coalesced += 1
        return next(request)

    def note_coalesced(self, count: int) -> None:
        """Batch planner callback: ``count`` duplicates solved once."""
        if count:
            with self._lock:
                self._coalesced += count

    def reset(self) -> None:
        with self._lock:
            self._coalesced = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"coalesced": self._coalesced, "in_flight": len(self._inflight)}

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        row.update(stateful="yes", detail=f"coalesced {self._coalesced}")
        return row


class MetricsMiddleware(Middleware):
    """Per-disposition latency histograms for the whole downstream chain.

    Records one sample per request under the response's disposition
    (``cold`` / ``cache-hit`` / ``warm-structural`` / ``shed-*``), and —
    fed by the gateway after each dispatch — per-stage inclusive
    latencies under ``stage:<name>``.  :meth:`snapshot` renders
    ``repro/bench-v1`` rows (mean/p50/p95), which is what
    ``repro bench --json`` folds into ``BENCH_gateway.json``.
    """

    name = "metrics"

    def __init__(self, max_samples: int = 4096):
        self.max_samples = max_samples
        self._samples: Dict[str, deque] = {}
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def handle(self, request: Request, next: Handler) -> Response:
        start = time.perf_counter()
        response = next(request)
        self.record(response.disposition, time.perf_counter() - start)
        return response

    def record(self, label: str, seconds: float) -> None:
        with self._lock:
            bucket = self._samples.get(label)
            if bucket is None:
                bucket = self._samples[label] = deque(maxlen=self.max_samples)
            bucket.append(seconds)
            self._counts[label] = self._counts.get(label, 0) + 1

    def observe_stages(self, timings: Tuple[Tuple[str, float], ...]) -> None:
        """Gateway callback: fold one dispatch's per-stage timings in."""
        for stage, seconds in timings:
            self.record(f"stage:{stage}", seconds)

    def snapshot(self) -> List[Dict[str, object]]:
        """One ``repro/bench-v1`` row per label (mean/p50/p95/samples)."""
        from repro.benchio import bench_stats

        with self._lock:
            items = [
                (label, list(bucket), self._counts.get(label, 0))
                for label, bucket in self._samples.items()
            ]
        return [
            {"name": label, **bench_stats(samples), "total_observations": count}
            for label, samples, count in sorted(items)
            if samples
        ]

    def reset(self) -> None:
        with self._lock:
            self._samples.clear()
            self._counts.clear()

    def describe(self) -> Dict[str, object]:
        with self._lock:
            labels = len(self._samples)
        row = super().describe()
        row.update(stateful="yes", detail=f"{labels} histogram(s)")
        return row


class AdmissionMiddleware(Middleware):
    """Load shedding: an in-flight bound plus deadline-aware refusal.

    A request whose ``deadline`` (monotonic timestamp; see
    :func:`repro.gateway.envelope.deadline_in`) has already passed is
    shed immediately with a typed
    :class:`~repro.gateway.envelope.Overloaded` response — solving it
    would waste capacity on an answer nobody is waiting for.  When
    ``max_in_flight`` is set, requests beyond that many concurrent
    solves are shed too, except requests with ``priority > 0``, which
    are always admitted.  With the defaults (no bound, no deadline) this
    stage is a transparent counter and the legacy facade never sheds.

    Every :class:`~repro.gateway.envelope.Overloaded` response carries a
    machine-readable ``retry_after_s`` backoff hint derived from the
    queue depth and an EWMA of recent downstream completion latency
    (roughly: how long until enough in-flight work drains for a retry to
    be admitted).  The serving layer maps it onto the HTTP
    ``Retry-After`` header; library callers should sleep at least that
    long before retrying.
    """

    name = "admission"

    #: EWMA decay for the downstream-latency estimate behind
    #: ``retry_after_s`` (0.2 ⇒ ~5-completion memory).
    LATENCY_EWMA_ALPHA = 0.2

    def __init__(
        self,
        max_in_flight: Optional[int] = None,
        retry_after_floor: float = 0.05,
    ):
        if max_in_flight is not None and max_in_flight < 0:
            raise ValueError("max_in_flight must be >= 0")
        if retry_after_floor < 0:
            raise ValueError("retry_after_floor must be >= 0")
        self.max_in_flight = max_in_flight
        self.retry_after_floor = retry_after_floor
        self._in_flight = 0
        self._admitted = 0
        self._shed_deadline = 0
        self._shed_capacity = 0
        self._latency_ewma = 0.0
        self._lock = threading.Lock()

    def _retry_after_locked(self) -> float:
        """Queue-depth-derived backoff hint; call under ``self._lock``.

        Expected drain time for one admission slot: the recent per-solve
        latency scaled by how oversubscribed the bound is, floored so
        callers never busy-spin on a cold (no-latency-sample) stage.
        """
        base = self._latency_ewma or self.retry_after_floor
        slots = max(1, self.max_in_flight or 1)
        depth = (self._in_flight + 1) / slots
        return max(self.retry_after_floor, base * depth)

    def retry_after_hint(self) -> float:
        """The backoff hint a request shed *right now* would receive."""
        with self._lock:
            return self._retry_after_locked()

    def handle(self, request: Request, next: Handler) -> Response:
        if request.deadline is not None and time.monotonic() >= request.deadline:
            with self._lock:
                self._shed_deadline += 1
                hint = self._retry_after_locked()
            return Overloaded(
                scheduler=request.scheduler,
                disposition="shed-deadline",
                reason="deadline passed before the request was admitted",
                retry_after_s=hint,
            )
        with self._lock:
            if (
                self.max_in_flight is not None
                and request.priority <= 0
                and self._in_flight >= self.max_in_flight
            ):
                self._shed_capacity += 1
                limit = self.max_in_flight
                hint = self._retry_after_locked()
                return Overloaded(
                    scheduler=request.scheduler,
                    disposition="shed-capacity",
                    reason=f"{self._in_flight} request(s) in flight >= bound {limit}",
                    retry_after_s=hint,
                )
            self._in_flight += 1
            self._admitted += 1
        start = time.perf_counter()
        try:
            return next(request)
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                self._in_flight -= 1
                if self._latency_ewma:
                    alpha = self.LATENCY_EWMA_ALPHA
                    self._latency_ewma += alpha * (elapsed - self._latency_ewma)
                else:
                    self._latency_ewma = elapsed

    def reset(self) -> None:
        with self._lock:
            self._admitted = 0
            self._shed_deadline = 0
            self._shed_capacity = 0
            self._latency_ewma = 0.0

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "admitted": self._admitted,
                "shed_deadline": self._shed_deadline,
                "shed_capacity": self._shed_capacity,
                "in_flight": self._in_flight,
                "retry_after_hint_s": self._retry_after_locked(),
            }

    def describe(self) -> Dict[str, object]:
        row = super().describe()
        bound = "unbounded" if self.max_in_flight is None else self.max_in_flight
        row.update(sheds="yes", stateful="yes", detail=f"max_in_flight {bound}")
        return row


__all__ = [
    "AdmissionMiddleware",
    "CacheMiddleware",
    "CacheStats",
    "CoalesceMiddleware",
    "Handler",
    "MAX_WARM_STATES",
    "MetricsMiddleware",
    "Middleware",
    "SolverMiddleware",
    "WarmStartMiddleware",
    "derive_key",
]
