"""The Gateway: one stable entry point over a composable pipeline.

``Gateway(pipeline)`` composes a list of
:class:`~repro.gateway.middleware.Middleware` stages into a single
request handler and is the public front door for every solve in the
repo — the legacy :class:`~repro.service.SchedulingService` facade is a
thin shim over one.  :func:`default_pipeline` builds the full stack
(admission → metrics → coalesce → warm-start → cache → solver);
:func:`bare_pipeline` is just the terminal solver, useful for
differential testing (``repro solve --pipeline bare``) and as the
baseline in ``BENCH_gateway.json``.

Usage::

    from repro.gateway import Gateway, Request, default_pipeline

    gateway = Gateway(default_pipeline())
    response = gateway.solve(instance, "oef-coop")       # alias ok
    response = gateway.solve(Request(instance, "max-min", priority=1))
    gateway.use(MyLoggingStage(), before="solver")       # extend it

Third-party stages implement ``handle(request, next)`` and slot in
anywhere via :meth:`Gateway.use` — see ``docs/middleware.md`` and
``examples/custom_middleware.py``.

Batch solves
------------
:meth:`Gateway.solve_batch` keeps PR 2's parallel engine: with an
execution backend it plans the batch against the pipeline's cache stage
(only cache-missing work runs), dedupes identical requests through the
coalesce stage's identity rule, fans the remainder out through
capability-matched lanes (process pool / thread fallback / in-line
serial, degrading with a :class:`RuntimeWarning` instead of crashing),
and merges worker results back into the cache — so a repeated batch is
~100% hits on any backend.  Serial batches simply dispatch each request
through the full pipeline.

Timings
-------
Every dispatch times each stage (inclusive: time at or below the stage)
and attaches the result to ``Response.stage_timings``; when a
:class:`~repro.gateway.middleware.MetricsMiddleware` is present the same
samples feed its per-stage histograms, which ``repro bench`` renders.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.allocation import Allocation
from repro.gateway.envelope import (
    Request,
    Response,
    instance_fingerprint,
    options_key,
)
from repro.gateway.middleware import (
    AdmissionMiddleware,
    CacheMiddleware,
    CacheStats,
    CoalesceMiddleware,
    Handler,
    MetricsMiddleware,
    Middleware,
    SolverMiddleware,
    WarmStartMiddleware,
    derive_key,
)
from repro.parallel import (
    BackendSpec,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    probe_picklable,
)
from repro.registry import SchedulerRegistry


def _solve_payload(payload: tuple) -> Tuple[np.ndarray, Optional[str], float]:
    """Worker-side solve: construct the scheduler and run one allocation.

    Module-level (and fed only picklable payloads) so it can cross a
    process boundary; thread and serial lanes reuse it unchanged.  Only
    the allocation matrix travels back — the parent re-wraps it in an
    :class:`Allocation` against its own instance object and merges it
    into the shared cache.
    """
    instance, factory, options = payload
    start = time.perf_counter()
    allocation = factory(**options).allocate(instance)
    elapsed = time.perf_counter() - start
    return allocation.matrix, allocation.allocator_name, elapsed


def default_pipeline(
    registry: Optional[SchedulerRegistry] = None,
    *,
    max_cache_entries: int = 4096,
    max_in_flight: Optional[int] = None,
    metrics: bool = True,
    audit: Union[None, float, "Middleware"] = None,
) -> List[Middleware]:
    """The full middleware stack, outermost first.

    Order rationale (the stage-ordering contract, see
    ``docs/middleware.md``): admission sheds before any work happens;
    metrics time everything below; the audit tap (when enabled) sits
    below metrics and above coalesce/cache so it observes every
    admitted response, cache hits included; coalesce sits above the
    cache so a coalesced follower's retry is a cache hit; warm-start
    sits above the cache so exact-tier hits still carry a chainable LP
    state; the solver terminates the chain.

    ``audit`` enables continuous fairness auditing
    (:mod:`repro.auditor`): pass a sampling rate in ``[0, 1]`` for a
    stage with default worker/ledger wiring, or a preconfigured
    :class:`~repro.auditor.middleware.AuditMiddleware` instance.
    """
    stages: List[Middleware] = [AdmissionMiddleware(max_in_flight=max_in_flight)]
    if metrics:
        stages.append(MetricsMiddleware())
    if audit is not None:
        from repro.auditor.middleware import AuditMiddleware

        if isinstance(audit, Middleware):
            stages.append(audit)
        else:
            stages.append(AuditMiddleware(float(audit), registry=registry))
    stages.extend(
        [
            CoalesceMiddleware(registry),
            WarmStartMiddleware(registry),
            CacheMiddleware(registry, max_entries=max_cache_entries),
            SolverMiddleware(registry),
        ]
    )
    return stages


def bare_pipeline(registry: Optional[SchedulerRegistry] = None) -> List[Middleware]:
    """Just the terminal solver: no caching, no shedding, no telemetry."""
    return [SolverMiddleware(registry)]


class Gateway:
    """Composable request pipeline behind one stable ``solve`` surface."""

    def __init__(
        self,
        pipeline: Optional[Sequence[Middleware]] = None,
        *,
        registry: Optional[SchedulerRegistry] = None,
    ):
        self._stages: List[Middleware] = list(
            pipeline if pipeline is not None else default_pipeline(registry)
        )
        if not self._stages:
            raise ValueError("a gateway needs at least one pipeline stage")
        if registry is None:
            solver = self.find(SolverMiddleware)
            if solver is not None:
                registry = solver.registry
        if registry is None:
            from repro.registry import REGISTRY

            registry = REGISTRY
        self.registry = registry
        self._local = threading.local()
        self._recompile()

    # -- pipeline management -----------------------------------------------
    @property
    def pipeline(self) -> Tuple[Middleware, ...]:
        return tuple(self._stages)

    def find(self, stage: Union[type, str]) -> Optional[Middleware]:
        """First pipeline stage matching a class or stage name."""
        for candidate in self._stages:
            if isinstance(stage, str):
                if candidate.name == stage:
                    return candidate
            elif isinstance(candidate, stage):
                return candidate
        return None

    def use(
        self,
        middleware: Middleware,
        *,
        before: Union[type, str, Middleware, None] = None,
        after: Union[type, str, Middleware, None] = None,
    ) -> "Gateway":
        """Insert a stage into the pipeline (returns ``self`` for chaining).

        ``before``/``after`` anchor the insertion point by stage name,
        class, or instance; with neither, the stage lands just above the
        terminal stage (the last position that still runs on cache
        misses).  Exactly one anchor may be given.  An unknown anchor
        raises ``ValueError``, as does inserting the same stage
        *instance* twice — stages hold per-stage state (locks, counters),
        so one instance appearing at two pipeline positions would
        double-count every request.
        """
        if before is not None and after is not None:
            raise ValueError("pass at most one of before=/after=")
        if any(candidate is middleware for candidate in self._stages):
            raise ValueError(
                f"stage {middleware.name!r} is already in the pipeline; "
                "construct a second instance to insert it again"
            )
        if before is None and after is None:
            index = max(len(self._stages) - 1, 0)
        else:
            anchor = before if before is not None else after
            index = self._index_of(anchor)
            if after is not None:
                index += 1
        self._stages.insert(index, middleware)
        self._recompile()
        return self

    def remove(self, stage: Union[type, str, Middleware]) -> Middleware:
        """Remove (and return) the first matching stage."""
        index = self._index_of(stage)
        removed = self._stages.pop(index)
        self._recompile()
        return removed

    def _index_of(self, stage: Union[type, str, Middleware]) -> int:
        for index, candidate in enumerate(self._stages):
            if candidate is stage:
                return index
            if isinstance(stage, str) and candidate.name == stage:
                return index
            if isinstance(stage, type) and isinstance(candidate, stage):
                return index
        raise ValueError(f"no pipeline stage matches {stage!r}")

    def _recompile(self) -> None:
        def terminal_guard(request: Request) -> Response:
            raise RuntimeError(
                "gateway pipeline ended without a terminal stage answering; "
                "append a SolverMiddleware (or another terminal) to the "
                "pipeline"
            )

        local = self._local

        def wrap(stage: Middleware, nxt: Handler) -> Handler:
            handle = stage.handle
            stage_name = stage.name

            def handler(request: Request) -> Response:
                start = time.perf_counter()
                try:
                    return handle(request, nxt)
                finally:
                    frames = getattr(local, "frames", None)
                    if frames:
                        frames[-1].append(
                            (stage_name, time.perf_counter() - start)
                        )

            return handler

        handler: Handler = terminal_guard
        for stage in reversed(self._stages):
            handler = wrap(stage, handler)
        self._entry = handler
        self._metrics = self.find(MetricsMiddleware)

    def describe(self) -> List[Dict[str, object]]:
        """One capability row per stage, pipeline order, for the CLI."""
        rows = []
        for position, stage in enumerate(self._stages):
            row: Dict[str, object] = {"#": position}
            row.update(stage.describe())
            rows.append(row)
        return rows

    # -- dispatch ------------------------------------------------------------
    def dispatch(self, request: Request) -> Response:
        """Run one request through the pipeline exactly as given.

        No normalisation happens here: the scheduler name is not
        resolved and no cache key is derived, so custom pipelines with
        non-allocation payloads (the simulator's decision pipeline) can
        use the machinery untouched.  Most callers want :meth:`solve`.
        """
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = self._local.frames = []
        frames.append([])
        try:
            response = self._entry(request)
        finally:
            collected = frames.pop()
        timings = tuple(reversed(collected))
        if timings:
            response = replace(response, stage_timings=timings)
            if self._metrics is not None:
                self._metrics.observe_stages(timings)
                if all(name != self._metrics.name for name, _ in timings):
                    # a stage above metrics answered (e.g. admission shed):
                    # record the disposition here so shed-* histograms exist
                    self._metrics.record(response.disposition, timings[0][1])
        return response

    def solve(
        self,
        instance: Union[Request, Any],
        scheduler: str = "oef-coop",
        *,
        options: Optional[Mapping[str, object]] = None,
        use_cache: bool = True,
        incremental: bool = False,
        prev_result: Optional[Any] = None,
        priority: int = 0,
        deadline: Optional[float] = None,
    ) -> Response:
        """Normalise one request and dispatch it.

        Accepts either a prebuilt :class:`Request` (keyword arguments are
        then ignored) or the classic ``(instance, scheduler, options)``
        shape.  Normalisation resolves the scheduler alias to its
        canonical name and precomputes the cache key once, so every
        stage below shares the same identity without re-hashing —
        uncacheable option values raise ``TypeError`` here, before any
        solving starts.
        """
        if isinstance(instance, Request):
            request = instance
        else:
            request = Request(
                instance=instance,
                scheduler=scheduler,
                options=dict(options or {}),
                use_cache=use_cache,
                incremental=incremental,
                prev_result=prev_result,
                priority=priority,
                deadline=deadline,
            )
        name = self.registry.resolve(request.scheduler)
        fingerprint = request.fingerprint or instance_fingerprint(request.instance)
        key = request.key
        if key is None and request.use_cache:
            # inlined derive_key() with the parts already at hand (one
            # dataclasses.replace on the hot path instead of two)
            key = (fingerprint, name, options_key(request.options))
        request = replace(
            request, scheduler=name, key=key, fingerprint=fingerprint
        )
        return self.dispatch(request)

    # -- batch solves --------------------------------------------------------
    def solve_batch(
        self,
        requests: Sequence[Union[Request, Tuple[Any, str, Mapping[str, object]]]],
        *,
        backend: Optional[BackendSpec] = None,
        max_workers: Optional[int] = None,
        lp_batch: bool = False,
    ) -> List[Response]:
        """Solve many requests, optionally fanned out across workers.

        ``requests`` is a sequence of :class:`Request` objects (or bare
        ``(instance, scheduler, options)`` triples).  With ``backend``
        unset or serial, each request dispatches through the full
        pipeline in order.  Otherwise the cache-missing solves fan out
        through capability-matched lanes and merge back into the cache
        stage; see the module docstring for the contract.

        ``lp_batch=True`` opts in to the *composed-LP* executor: the
        cache-missing requests whose schedulers expose the batch
        protocol (``compile_form``/``allocation_from_values``) are
        stacked block-diagonally and solved in one vectorized pass via
        :func:`repro.solver.solve_forms`, which certifies or re-solves
        each block so answers match the serial path exactly.  The
        composed solve is itself the batched execution, so it supersedes
        worker fan-out for the lane-eligible requests; schedulers
        without the protocol (or instances it declines, e.g. the
        cutting-plane regime) solve solo as usual.

        Semantics the lane planner cannot replicate always dispatch
        through the full pipeline instead of a lane, so a batch answers
        exactly like the equivalent serial calls on every backend:
        requests that are ``incremental`` (warm tiers) or carry a
        ``deadline`` (admission shedding) are routed individually, and a
        pipeline containing stages beyond the built-in transparent set —
        a bounded :class:`AdmissionMiddleware` or any user-installed
        stage — dispatches the *whole* batch through the chain (with a
        :class:`RuntimeWarning`, since the fan-out is forfeited).
        Custom ``Request.key`` values are a :meth:`dispatch`-level
        feature; the lane planner derives its own content identity.
        """
        normalised = [
            item
            if isinstance(item, Request)
            else Request(instance=item[0], scheduler=item[1], options=dict(item[2]))
            for item in requests
        ]
        resolved = (
            None
            if backend is None
            else get_backend(backend, max_workers, task_count=len(normalised))
        )
        use_lanes = resolved is not None and not isinstance(resolved, SerialBackend)
        if not use_lanes and not lp_batch:
            return [self.solve(request) for request in normalised]
        if not self._lanes_replicate_pipeline():
            warnings.warn(
                "the pipeline contains stages the batch planner cannot "
                "replicate (a bounded admission stage or custom "
                "middleware); dispatching the batch through the full "
                "pipeline without worker fan-out",
                RuntimeWarning,
                stacklevel=2,
            )
            return [self.solve(request) for request in normalised]
        # split off requests whose pipeline semantics cannot fan out
        lane_items = [
            (index, request)
            for index, request in enumerate(normalised)
            if not request.incremental and request.deadline is None
        ]
        results: List[Optional[Response]] = [None] * len(normalised)
        if lane_items:
            lane_requests = [request for _, request in lane_items]
            lane_responses = (
                self._solve_batch_lp(lane_requests)
                if lp_batch
                else self._solve_batch_parallel(lane_requests, resolved)
            )
            for (index, _), response in zip(lane_items, lane_responses):
                results[index] = response
        for index, request in enumerate(normalised):
            if results[index] is None:
                # full-pipeline dispatch: admission, warm tiers, coalesce
                # all apply; may hit entries the lanes just merged in
                results[index] = self.solve(request)
        return results

    def _lanes_replicate_pipeline(self) -> bool:
        """True when the batch lanes honour every stage's semantics.

        The lane planner replicates exactly the built-in transparent
        stages (metrics, coalesce dedup, warm-start for non-incremental
        work, cache lookup/merge) over a terminal solver; an admission
        stage with an in-flight bound, or any stage outside the built-in
        set, would be silently bypassed — those pipelines dispatch
        per-request instead.
        """
        from repro.auditor.middleware import AuditMiddleware

        # exact types: a subclass (e.g. a custom cache entry format) may
        # change semantics the lanes would silently violate.  The audit
        # tap is a pure observer, so lanes may bypass it: batch fan-out
        # responses go unsampled (they still warm the cache the audited
        # singleton traffic reads).
        for stage in self._stages[:-1]:
            if type(stage) is AdmissionMiddleware:
                if stage.max_in_flight is not None:
                    return False
            elif type(stage) not in (
                MetricsMiddleware,
                AuditMiddleware,
                CoalesceMiddleware,
                WarmStartMiddleware,
                CacheMiddleware,
            ):
                return False
        return type(self._stages[-1]) is SolverMiddleware

    def _solve_batch_parallel(
        self, requests: List[Request], backend
    ) -> List[Response]:
        """Fan cache-missing solves out to ``backend``, then merge back.

        Three lanes, chosen per scheduler capability: the requested pool
        (process or thread), a thread fallback for unpicklable work under
        a process backend, and in-line serial for schedulers that are not
        ``parallel_safe``.  Duplicate requests inside the batch solve
        once (the coalesce identity rule); the extra occurrences count as
        cache hits, mirroring the serial path.
        """
        cache = self.find(CacheMiddleware)
        metrics = self._metrics
        plan = self._plan_batch(requests, cache)
        pending = self._pending_work(plan, cache)
        solved = self._execute_pending(pending, backend)
        return self._assemble_batch(plan, solved, cache, metrics)

    def _solve_batch_lp(self, requests: List[Request]) -> List[Response]:
        """The composed-LP batch executor (``solve_batch(lp_batch=True)``).

        Identical planning/merge machinery to the worker-lane path; only
        the execution differs — protocol-capable schedulers compile a
        :class:`StandardForm` per request and the whole set solves in
        one block-diagonal pass through
        :func:`repro.solver.solve_forms`, which certifies every block's
        answer against the solo solve (or actually runs it solo).
        """
        cache = self.find(CacheMiddleware)
        metrics = self._metrics
        plan = self._plan_batch(requests, cache)
        pending = self._pending_work(plan, cache)
        solved = self._execute_pending_lp(pending)
        return self._assemble_batch(plan, solved, cache, metrics)

    def _plan_batch(self, requests: List[Request], cache) -> List[tuple]:
        """Resolve names/fingerprints up front (raises on unknown
        schedulers or uncacheable options exactly like the serial path)."""
        plan = []
        for request in requests:
            name = self.registry.resolve(request.scheduler)
            opts = dict(request.options)
            fingerprint = request.fingerprint or instance_fingerprint(request.instance)
            use_cache = request.use_cache and cache is not None
            # always the derived content identity: a custom Request.key is a
            # dispatch()-level feature and would corrupt the merge entries
            key = (fingerprint, name, options_key(opts)) if use_cache else None
            plan.append((request.instance, name, opts, fingerprint, key, use_cache))
        return plan

    def _pending_work(
        self, plan: List[tuple], cache
    ) -> "OrderedDict[object, Tuple[Any, str, Dict[str, object]]]":
        """The work that actually needs solving, deduplicated by key."""
        coalesce = self.find(CoalesceMiddleware)
        pending: "OrderedDict[object, Tuple[Any, str, Dict[str, object]]]"
        pending = OrderedDict()
        duplicates = 0
        if cache is not None:
            with cache.lock:
                for index, (instance, name, opts, _, key, use_cache) in enumerate(plan):
                    if not use_cache:
                        pending[("#", index)] = (instance, name, opts)
                    elif not cache.contains_unlocked(key):
                        if key in pending:
                            duplicates += 1
                        else:
                            pending[key] = (instance, name, opts)
        else:
            for index, (instance, name, opts, _, _, _) in enumerate(plan):
                pending[("#", index)] = (instance, name, opts)
        if coalesce is not None:
            coalesce.note_coalesced(duplicates)
        return pending

    def _execute_pending_lp(
        self,
        pending: "OrderedDict[object, Tuple[Any, str, Dict[str, object]]]",
    ) -> Dict[object, Tuple[np.ndarray, Optional[str], float]]:
        """Solve the pending work through one composed LP where possible.

        A scheduler participates when it exposes the batch protocol and
        ``compile_form`` returns a form for the instance (it returns
        ``None`` to decline — trivial single-tenant cases, or regimes
        like cutting planes where a monolithic form is the wrong tool).
        Everything else runs the ordinary solo payload.
        """
        from repro.solver import solve_forms

        solved: Dict[object, Tuple[np.ndarray, Optional[str], float]] = {}
        batchable = []  # (lookup, allocator, instance, form)
        for lookup, (instance, name, opts) in pending.items():
            factory = self.registry.info(name).factory
            allocator = factory(**opts)
            form = None
            if hasattr(allocator, "compile_form") and hasattr(
                allocator, "allocation_from_values"
            ):
                form = allocator.compile_form(instance)
            if form is None:
                solved[lookup] = _solve_payload((instance, factory, opts))
            else:
                batchable.append((lookup, allocator, instance, form))
        if batchable:
            start = time.perf_counter()
            solutions = solve_forms([form for *_, form in batchable])
            elapsed = (time.perf_counter() - start) / len(batchable)
            for (lookup, allocator, instance, _), solution in zip(
                batchable, solutions
            ):
                allocation = allocator.allocation_from_values(
                    instance, solution.values
                )
                solved[lookup] = (
                    allocation.matrix,
                    allocation.allocator_name,
                    elapsed,
                )
        return solved

    def _assemble_batch(
        self,
        plan: List[tuple],
        solved: Dict[object, Tuple[np.ndarray, Optional[str], float]],
        cache,
        metrics,
    ) -> List[Response]:
        # merge worker results into the parent cache and snapshot one
        # (matrix, allocator_name, elapsed, from_cache, hits, misses)
        # tuple per request, in order; duplicates of one solved key read
        # the merged entry and count as hits, mirroring the serial
        # miss-then-hit behaviour.  Only bookkeeping happens under the
        # lock — Allocation construction and any re-solves stay outside.
        assembled: List[Optional[tuple]] = []
        evicted: List[int] = []
        first_seen: set = set()
        lock = cache.lock if cache is not None else threading.RLock()
        with lock:
            if cache is not None:
                for key, (matrix, allocator_name, _) in solved.items():
                    if isinstance(key, tuple) and len(key) == 2 and key[0] == "#":
                        continue  # uncached request: nothing to merge
                    # key = (fingerprint, name, options); fall back to the
                    # canonical name exactly like the serial insert path
                    cache.insert_unlocked(
                        key,
                        (matrix.copy(), allocator_name or key[1], key[0], key[1]),
                    )
            for index, (instance, name, opts, fingerprint, key, use_cache) in enumerate(
                plan
            ):
                lookup = key if use_cache else ("#", index)
                if lookup in solved and lookup not in first_seen:
                    first_seen.add(lookup)
                    matrix, allocator_name, elapsed = solved[lookup]
                    hits, misses = (
                        cache.note_miss_unlocked() if cache is not None else (0, 0)
                    )
                    assembled.append(
                        (matrix, allocator_name, elapsed, False, hits, misses)
                    )
                elif use_cache:
                    entry = cache.get_unlocked(key)
                    if entry is None:
                        # a tiny LRU bound can evict a pre-existing entry
                        # while the worker results merge in; re-solve it
                        # outside the lock below
                        evicted.append(index)
                        assembled.append(None)
                    else:
                        matrix, allocator_name = entry[0], entry[1]
                        hits, misses = cache.note_hit_unlocked()
                        assembled.append(
                            (matrix.copy(), allocator_name, 0.0, True, hits, misses)
                        )
                else:  # pragma: no cover - every uncached index is unique
                    raise AssertionError("uncached request missing its result")

        for index in evicted:
            instance, name, opts, _, _, _ = plan[index]
            matrix, allocator_name, elapsed = _solve_payload(
                (instance, self.registry.info(name).factory, opts)
            )
            with lock:
                hits, misses = (
                    cache.note_miss_unlocked() if cache is not None else (0, 0)
                )
                assembled[index] = (
                    matrix, allocator_name, elapsed, False, hits, misses,
                )

        responses = []
        for (instance, name, opts, fingerprint, key, use_cache), (
            matrix, allocator_name, elapsed, from_cache, hits, misses,
        ) in zip(plan, assembled):
            response = Response(
                scheduler=name,
                allocation=Allocation(
                    matrix, instance, allocator_name=allocator_name
                ),
                fingerprint=fingerprint,
                disposition="cache-hit" if from_cache else "cold",
                solve_seconds=elapsed,
                cache_hits=hits,
                cache_misses=misses,
            )
            response = replace(response, result=response.allocation)
            if metrics is not None:
                metrics.record(response.disposition, elapsed)
            responses.append(response)
        return responses

    def _execute_pending(
        self,
        pending: "OrderedDict[object, Tuple[Any, str, Dict[str, object]]]",
        backend,
    ) -> Dict[object, Tuple[np.ndarray, Optional[str], float]]:
        """Run the deduplicated work through capability-matched lanes.

        Lane choice per scheduler: a process pool needs only a picklable
        payload (workers are isolated single-threaded processes, so
        ``parallel_safe`` is irrelevant there); a thread pool needs
        ``parallel_safe``; everything else runs serially in the parent.
        The fallback lanes execute *concurrently* with the requested
        pool, so a mixed batch still overlaps all its work.
        """
        pool_lane: List[Tuple[object, tuple]] = []
        thread_lane: List[Tuple[object, tuple]] = []
        serial_lane: List[Tuple[object, tuple]] = []
        wants_processes = isinstance(backend, ProcessBackend)
        warned: set = set()

        def warn_once(name: str, message: str) -> None:
            if name not in warned:
                warned.add(name)
                warnings.warn(message, RuntimeWarning, stacklevel=5)

        # memoize the (expensive) instance pickle probe by object identity
        # — batches typically repeat instances across schedulers — and
        # probe the (factory, options) part separately; it is tiny.
        instance_probe: Dict[int, bool] = {}

        def payload_picklable(payload: tuple) -> bool:
            instance, factory, opts = payload
            ok = instance_probe.get(id(instance))
            if ok is None:
                ok = probe_picklable(instance)
                instance_probe[id(instance)] = ok
            return ok and probe_picklable((factory, opts))

        for lookup, (instance, name, opts) in pending.items():
            info = self.registry.info(name)
            payload = (instance, info.factory, opts)
            if wants_processes and info.picklable and payload_picklable(payload):
                pool_lane.append((lookup, payload))
            elif not info.parallel_safe:
                warn_once(
                    name,
                    f"scheduler {name!r} is registered parallel_safe=False "
                    "and cannot reach process isolation; solving it "
                    "serially in the parent process",
                )
                serial_lane.append((lookup, payload))
            elif wants_processes:
                warn_once(
                    name,
                    f"scheduler {name!r} cannot cross a process boundary "
                    "(picklable=False or unpicklable payload); falling "
                    "back to the thread backend for this work",
                )
                thread_lane.append((lookup, payload))
            else:
                pool_lane.append((lookup, payload))

        solved: Dict[object, Tuple[np.ndarray, Optional[str], float]] = {}
        fallback_results: Dict[object, Tuple[np.ndarray, Optional[str], float]] = {}
        fallback_errors: List[BaseException] = []

        def run_fallback_lanes() -> None:
            try:
                if thread_lane:
                    fallback = ThreadBackend(backend.max_workers)
                    outputs = fallback.map(
                        _solve_payload, [p for _, p in thread_lane]
                    )
                    fallback_results.update(
                        zip((k for k, _ in thread_lane), outputs)
                    )
                # the serial lane runs alone (after the thread-pool map has
                # drained), honouring parallel_safe=False within this thread
                for lookup, payload in serial_lane:
                    fallback_results[lookup] = _solve_payload(payload)
            except BaseException as exc:  # re-raised in the parent below
                fallback_errors.append(exc)

        # overlap the fallback lanes with the pool only when the pool's
        # workers are separate *processes*: under a thread pool, an
        # overlapped serial lane would solve concurrently with in-process
        # pool threads — exactly what parallel_safe=False forbids.
        fallback_worker: Optional[threading.Thread] = None
        if thread_lane or serial_lane:
            if pool_lane and wants_processes:
                fallback_worker = threading.Thread(target=run_fallback_lanes)
                fallback_worker.start()
            else:
                run_fallback_lanes()
        if pool_lane:
            outputs = backend.map(_solve_payload, [p for _, p in pool_lane])
            solved.update(zip((k for k, _ in pool_lane), outputs))
        if fallback_worker is not None:
            fallback_worker.join()
        if fallback_errors:
            raise fallback_errors[0]
        solved.update(fallback_results)
        return solved

    # -- telemetry -----------------------------------------------------------
    def cache_info(self) -> CacheStats:
        """Aggregated :class:`CacheStats` across the cache + warm stages."""
        cache = self.find(CacheMiddleware)
        warm = self.find(WarmStartMiddleware)
        cache_stats = (
            cache.stats()
            if cache is not None
            else {"hits": 0, "misses": 0, "warm_hits": 0, "evictions": 0,
                  "entries": 0, "max_entries": 0}
        )
        warm_stats = (
            warm.stats()
            if warm is not None
            else {"structural_hits": 0, "evictions": 0, "warm_entries": 0}
        )
        return CacheStats(
            hits=cache_stats["hits"],
            misses=cache_stats["misses"],
            entries=cache_stats["entries"],
            max_entries=cache_stats["max_entries"],
            warm_hits=cache_stats["warm_hits"],
            structural_hits=warm_stats["structural_hits"],
            evictions=cache_stats["evictions"] + warm_stats["evictions"],
            warm_entries=warm_stats["warm_entries"],
        )

    def metrics_snapshot(self) -> List[Dict[str, object]]:
        """The metrics stage's histogram rows ([] without one)."""
        return [] if self._metrics is None else self._metrics.snapshot()

    def clear_cache(self) -> None:
        """Reset the cache and warm stages (entries and counters)."""
        for cls in (CacheMiddleware, WarmStartMiddleware):
            stage = self.find(cls)
            if stage is not None:
                stage.reset()

    def reset(self) -> None:
        """Reset every stage (caches, counters, histograms)."""
        for stage in self._stages:
            stage.reset()

    def __repr__(self) -> str:
        names = " -> ".join(stage.name for stage in self._stages)
        return f"Gateway({names})"


__all__ = [
    "Gateway",
    "bare_pipeline",
    "default_pipeline",
    "_solve_payload",
]
