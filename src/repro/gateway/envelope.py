"""The gateway envelope: typed ``Request``/``Response`` for every solve.

The paper frames scheduling as a *middleware service*; this module
defines the service's wire format.  A :class:`Request` names what to
solve (instance, scheduler, constructor options) and how the pipeline
may treat it (cache reuse, incremental warm-start intent, priority and
deadline for admission control).  A :class:`Response` carries the
allocation plus full provenance: which scheduler produced it, the
instance fingerprint it answers, how it was served (the *disposition*:
cold solve, cache hit, verified warm start, shed), the solver wall time,
cache-counter snapshots, and per-stage latency once the gateway has
timed the pipeline.  Both are frozen dataclasses, so middleware stages
derive modified copies with :func:`dataclasses.replace` instead of
mutating shared state — the envelope is safe to hand across threads.

These envelopes supersede the ad-hoc ``SolveRequest``/``SolveResult``
pair of :mod:`repro.service`, which remain as thin legacy aliases over
the same data (see the migration table in ``docs/api.md``).

Content fingerprints
--------------------
:func:`instance_fingerprint` and :func:`structural_fingerprint` (moved
here from ``repro.service``, which re-exports them) are the cache
identities the pipeline keys on:

* the *exact* fingerprint covers user names, GPU types, the speedup
  matrix, and capacities — identical data ⇒ identical fingerprint;
* the *structural* fingerprint covers only who is being scheduled (user
  set, GPU types, matrix shape) — two instances share it exactly when
  one's LP warm state is a candidate for the other's solve.

:func:`options_key` freezes scheduler constructor options into a
hashable, order-insensitive, content-based key; values whose equality is
identity-based raise ``TypeError`` rather than risking a wrong cached
allocation.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.instance import ProblemInstance
from repro.solver.warm import WarmStartState


def instance_fingerprint(instance: ProblemInstance) -> str:
    """Content hash of an instance: identical data ⇒ identical fingerprint.

    Covers user names, GPU-type names, the speedup matrix, and the
    capacity vector, so two independently constructed but equal instances
    share cache entries.
    """
    digest = hashlib.sha256()
    digest.update("\x1f".join(map(str, instance.speedups.users)).encode())
    digest.update(b"\x1e")
    digest.update("\x1f".join(map(str, instance.speedups.gpu_types)).encode())
    digest.update(b"\x1e")
    digest.update(np.ascontiguousarray(instance.speedups.values, dtype=np.float64).tobytes())
    digest.update(np.ascontiguousarray(instance.capacities, dtype=np.float64).tobytes())
    return digest.hexdigest()


def structural_fingerprint(instance: ProblemInstance) -> str:
    """Shape-only hash of an instance: who is being scheduled, not how fast.

    Covers user names, GPU-type names, and the speedup-matrix shape while
    deliberately excluding the numeric values and capacities — two
    instances share a structural fingerprint exactly when one's LP warm
    state is a candidate for the other's solve (the delta-aware tier of
    :class:`~repro.gateway.middleware.WarmStartMiddleware`).
    """
    digest = hashlib.sha256()
    digest.update("\x1f".join(map(str, instance.speedups.users)).encode())
    digest.update(b"\x1e")
    digest.update("\x1f".join(map(str, instance.speedups.gpu_types)).encode())
    digest.update(b"\x1e")
    digest.update(repr(tuple(instance.speedups.values.shape)).encode())
    return digest.hexdigest()


def _freeze(value: object) -> object:
    """A hashable, content-based stand-in for one option value.

    repr() would truncate numpy arrays and embed reusable memory
    addresses for plain objects — colliding or unstable cache keys that
    could silently return the wrong cached allocation.  Only values whose
    content defines equality are accepted.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, np.ndarray):
        return (value.shape, str(value.dtype), value.tobytes())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    if isinstance(value, Mapping):
        return tuple(
            sorted((str(key), _freeze(item)) for key, item in value.items())
        )
    raise TypeError(
        f"scheduler option of type {type(value).__name__!r} cannot be cached "
        "by content; pass primitives/arrays, or solve with use_cache=False"
    )


def options_key(options: Mapping[str, object]) -> Tuple[Tuple[str, object], ...]:
    """Hashable, order-insensitive cache key for constructor options."""
    return tuple(sorted((str(key), _freeze(value)) for key, value in options.items()))


def deadline_in(seconds: float) -> float:
    """An absolute :class:`Request` deadline ``seconds`` from now.

    Deadlines are monotonic-clock timestamps
    (:func:`time.monotonic`), so they survive wall-clock adjustments;
    ``AdmissionMiddleware`` sheds a request whose deadline has passed
    before any solving starts.
    """
    return time.monotonic() + float(seconds)


@dataclass(frozen=True)
class Request:
    """One unit of work entering the gateway pipeline.

    ``instance`` is the problem payload — a
    :class:`~repro.core.instance.ProblemInstance` for allocation solves
    (custom pipelines, e.g. the cluster simulator's decision pipeline,
    may carry other payloads).  ``scheduler`` names a registry scheduler
    (alias or canonical; :meth:`Gateway.solve` canonicalises it).

    Pipeline directives:

    * ``priority`` — admission control never capacity-sheds requests
      with ``priority > 0`` (deadline shedding still applies);
    * ``deadline`` — absolute monotonic timestamp (see
      :func:`deadline_in`); a request past its deadline is shed with a
      typed :class:`Overloaded` response instead of being solved;
    * ``prev_result`` — the previous round's result (anything exposing
      ``.scheduler`` and ``.warm_state``) for incremental re-solves;
    * ``use_cache`` — when ``False`` the cache stage neither looks up
      nor stores (it still counts the solve as a miss, matching the
      legacy service contract);
    * ``incremental`` — marks a ``resolve``-style request: the cache
      stage counts exact hits as warm hits and the warm-start stage
      threads verified LP states through the solver;
    * ``key`` — a precomputed cache identity; ``None`` (default) lets
      the pipeline derive ``(fingerprint, scheduler, options)`` itself.
      Custom pipelines whose payloads have their own content keys (the
      simulator's decision key) set it explicitly and dispatch through
      :meth:`Gateway.dispatch`; the allocation batch planner always
      derives its own identity;
    * ``fingerprint`` — the instance's content fingerprint, filled by
      :meth:`Gateway.solve` during normalisation so downstream stages
      never re-hash the instance; user code leaves it ``None``;
    * ``warm_state`` — a verified LP warm state injected by
      ``WarmStartMiddleware`` on its way down the chain; user code
      normally leaves it ``None``.
    """

    instance: Any
    scheduler: str = "oef-coop"
    #: Constructor options forwarded to the scheduler factory.
    options: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0
    deadline: Optional[float] = None
    prev_result: Optional[Any] = None
    use_cache: bool = True
    incremental: bool = False
    key: Optional[object] = None
    fingerprint: Optional[str] = None
    warm_state: Optional[WarmStartState] = None


#: How a response was served; the cache/warm *disposition* of a solve.
DISPOSITIONS = (
    "cold",             # the terminal stage ran the scheduler from scratch
    "cache-hit",        # answered from the exact-content cache
    "warm-structural",  # the LP accepted a verified prior state
    "shed-deadline",    # admission refused: deadline already passed
    "shed-capacity",    # admission refused: too many requests in flight
)


@dataclass(frozen=True)
class Response:
    """An allocation plus provenance, telemetry, and pipeline timings."""

    scheduler: str
    allocation: Optional[Allocation] = None
    #: The generic payload; equals ``allocation`` for allocation solves.
    #: Custom pipelines (e.g. the simulator's decision pipeline) put
    #: their own result type here and leave ``allocation`` as ``None``.
    result: Any = None
    fingerprint: str = ""
    #: ``"ok"`` or ``"overloaded"`` (see :class:`Overloaded`).
    status: str = "ok"
    #: One of :data:`DISPOSITIONS`.
    disposition: str = "cold"
    #: Scheduler wall time for this call (0.0 when served from cache).
    solve_seconds: float = 0.0
    #: Cache-counter snapshots at the time this response was produced
    #: (0 when no cache stage is in the pipeline).
    cache_hits: int = 0
    cache_misses: int = 0
    #: True when the scheduler's LP accepted a verified warm start.
    warm: bool = False
    #: This solve's own warm-start evidence; feed it back via
    #: ``Request.prev_result`` for the next drifted instance.
    warm_state: Optional[WarmStartState] = None
    #: ``((stage_name, inclusive_seconds), ...)`` outermost first —
    #: each entry is the time spent at or below that stage.  Filled by
    #: the gateway after the chain returns.
    stage_timings: Tuple[Tuple[str, float], ...] = ()
    #: Human-readable explanation for non-``ok`` responses.
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def from_cache(self) -> bool:
        return self.disposition == "cache-hit"

    @property
    def shed(self) -> bool:
        return self.disposition.startswith("shed-")


@dataclass(frozen=True)
class Overloaded(Response):
    """Typed refusal from admission control: nothing was solved.

    ``status`` is always ``"overloaded"`` and ``allocation`` is ``None``;
    ``disposition`` says why (``"shed-deadline"`` or
    ``"shed-capacity"``) and ``reason`` carries the human-readable
    detail.  Callers that cannot handle shedding should not configure
    deadlines or an in-flight bound — the default service facade never
    sheds.
    """

    status: str = "overloaded"
    disposition: str = "shed-capacity"
    #: Machine-readable backoff hint in seconds, derived by the admission
    #: stage from its queue depth and the recent downstream latency — the
    #: serving layer maps it onto an HTTP ``Retry-After`` header, and
    #: programmatic callers should sleep at least this long before
    #: retrying instead of guessing.
    retry_after_s: float = 0.0


__all__ = [
    "DISPOSITIONS",
    "Overloaded",
    "Request",
    "Response",
    "deadline_in",
    "instance_fingerprint",
    "options_key",
    "structural_fingerprint",
]
