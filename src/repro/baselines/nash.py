"""Max Nash welfare (CEEI) allocation — an independent envy-free point.

Not a baseline from the paper, but a powerful cross-check of its central
claim: maximising the *product* of tenant throughputs (Nash social
welfare) over divisible goods yields the competitive equilibrium from
equal incomes, which is provably envy-free and pareto-efficient.
Cooperative OEF maximises *total* throughput subject to envy-freeness, so
its total must weakly dominate Nash's — the test suite verifies exactly
that, which pins down "optimal efficiency under EF" against an external
reference point.

``max sum_l log(W_l . x_l)`` is concave but not linear; it is solved here
as an LP via an outer piecewise-linear approximation: for tangent points
``t_k`` (a geometric grid), ``log`` is replaced by the upper envelope of
its tangents::

    u_l <= log(t_k) + (W_l . x_l - t_k) / t_k      for all k

Maximising ``sum_l u_l`` under these cuts approximates the Nash optimum
to within the grid resolution (the approximation error of tangent
envelopes for ``log`` on a geometric grid with ratio r is <= log(r) -
1 + 1/r, far below the test tolerances for the default 48-point grid).
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.core.properties import optimal_efficiency_upper_bound
from repro.registry import register_scheduler
from repro.solver import LinearProgram, dot


@register_scheduler(
    aliases=("nash",),
    family="baseline",
    description="Approximate max-Nash-welfare allocation via tangent cuts",
)
class NashWelfare(Allocator):
    """Approximate max-Nash-welfare allocation via tangent cuts."""

    name = "nash-welfare"

    def __init__(
        self,
        num_tangents: int = 48,
        refine_rounds: int = 6,
        backend: str = "auto",
    ):
        if num_tangents < 2:
            raise ValueError("need at least two tangent points")
        self.num_tangents = num_tangents
        self.refine_rounds = refine_rounds
        self.backend = backend

    def allocate(self, instance: ProblemInstance) -> Allocation:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape

        if num_users == 1:
            matrix = instance.capacities.reshape(1, num_types).copy()
            return Allocation(matrix, instance, allocator_name=self.name)

        # initial tangent grid: from a fraction of the equal split up to
        # the unconstrained throughput bound (geometric, so relative error
        # is uniform across the range)
        fair = instance.equal_split_throughput()
        lower = max(1e-6, float(fair.min()) / 10.0)
        upper = max(lower * 2.0, optimal_efficiency_upper_bound(instance))
        tangents = [np.geomspace(lower, upper, self.num_tangents)] * num_users

        # adaptive refinement: the tangent envelope is flat between grid
        # points, so a one-shot LP can drift within a segment (breaking
        # the EF/symmetry guarantees of the exact Nash point).  Re-solving
        # with a fresh tangent at each user's current throughput tightens
        # the envelope exactly where the optimum sits.
        matrix = None
        previous = None
        for _ in range(max(1, self.refine_rounds)):
            matrix = self._solve_with_tangents(instance, tangents)
            throughputs = np.einsum("lj,lj->l", speedups, matrix)
            if previous is not None and np.allclose(
                throughputs, previous, rtol=1e-7, atol=1e-9
            ):
                break
            previous = throughputs
            tangents = [
                np.append(points, np.clip(throughputs[user], lower, upper))
                for user, points in enumerate(tangents)
            ]
        return Allocation(matrix, instance, allocator_name=self.name)

    def _solve_with_tangents(self, instance: ProblemInstance, tangents) -> np.ndarray:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape

        lp = LinearProgram("nash-welfare")
        shares = lp.new_variable_array("x", (num_users, num_types), lower=0.0)
        utilities = lp.new_variable_array("u", num_users, lower=None)
        flat = list(shares.ravel())

        for type_index in range(num_types):
            row = np.zeros((1, num_users * num_types))
            row[0, type_index::num_types] = 1.0
            lp.add_matrix_constraints(
                row, flat, "<=", float(instance.capacities[type_index])
            )
        for user in range(num_users):
            throughput = dot(speedups[user], shares[user])
            for point in tangents[user]:
                # u <= log(t) + (T - t)/t
                lp.add_constraint(
                    utilities[user] - throughput / float(point)
                    <= float(np.log(point) - 1.0)
                )
        objective = utilities[0].to_expr()
        for user in range(1, num_users):
            objective = objective + utilities[user]
        lp.set_objective(objective, sense="max")
        solution = lp.solve(backend=self.backend)
        return np.clip(solution.value(shares), 0.0, None)
