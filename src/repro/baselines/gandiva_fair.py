"""Gandiva_fair: greedy second-price trading on top of max-min (§2.4).

The mechanism (Chaudhary et al., EuroSys '20, as analysed by the OEF
paper):

1. start from the max-min equal split — every tenant owns ``m_j / n`` of
   each GPU type;
2. repeatedly pick the (buyer, seller, slow type, fast type) combination
   with the *greatest speedup-ratio gap*, where the buyer values the fast
   type most (relative to the slow type) and the seller least;
3. the buyer trades away its slow-GPU share for the seller's fast-GPU
   share at a price strictly between the two valuations (the Vickrey-style
   "second price"; the paper's own worked example prices the trade at the
   midpoint of the two participants' ratios — e.g. 2.5 for ratios 2 and 3,
   rising to 2.9 when the seller fakes 2 -> 2.8, which this implementation
   reproduces exactly);
4. stop when no gap remains.

Every trade strictly raises both participants' throughput, so the result
is sharing-incentive and pareto-improving over max-min — but, as the paper
shows, neither envy-free nor strategy-proof nor optimally efficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.registry import register_scheduler


@dataclass(frozen=True)
class Trade:
    """One executed trade, kept for inspection and tests."""

    buyer: int
    seller: int
    slow_type: int
    fast_type: int
    price: float
    slow_amount: float  # slow-GPU share the buyer pays
    fast_amount: float  # fast-GPU share the buyer receives


@register_scheduler(
    aliases=("gandiva",),
    family="baseline",
    description="Gandiva_fair's greedy GPU-trading baseline",
)
class GandivaFair(Allocator):
    """Greedy trading baseline; records its trade log on the instance."""

    name = "gandiva-fair"

    def __init__(
        self,
        min_gap: float = 1e-6,
        min_volume: float = 1e-9,
        max_trades: int = 10_000,
        trade_lot: float = 0.0,
    ):
        """``trade_lot`` sets the trading granularity in slow-GPU units.

        The default 0.0 trades arbitrarily fine fractions — the fluid
        mechanism of the paper's §2.4 analysis.  The real Gandiva_fair
        trades whole GPUs (it migrates jobs between physical devices), so
        the cluster simulation uses ``trade_lot=1.0``: trades below one
        device cannot execute, leaving tenants with mixed residual
        holdings across GPU types — the source of Gandiva's cross-type
        placements in §6.3.3.
        """
        self.min_gap = min_gap
        self.min_volume = min_volume
        self.max_trades = max_trades
        self.trade_lot = trade_lot
        self.last_trades: List[Trade] = []

    def allocate(self, instance: ProblemInstance) -> Allocation:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape
        matrix = np.tile(instance.capacities / num_users, (num_users, 1))

        trades: List[Trade] = []
        for _ in range(self.max_trades):
            trade = self._best_trade(speedups, matrix)
            if trade is None:
                break
            self._execute(matrix, trade)
            trades.append(trade)
        self.last_trades = trades
        return Allocation(matrix, instance, allocator_name=self.name)

    # -- trading mechanics ---------------------------------------------------
    def _best_trade(
        self, speedups: np.ndarray, matrix: np.ndarray
    ) -> Optional[Trade]:
        """The (buyer, seller, slow, fast) tuple with the greatest ratio gap.

        The buyer must still hold some slow-GPU share to pay with; the
        seller must hold fast-GPU share to sell.
        """
        num_users, num_types = speedups.shape
        best: Optional[Tuple[float, Trade]] = None
        for slow in range(num_types):
            for fast in range(slow + 1, num_types):
                ratios = speedups[:, fast] / speedups[:, slow]
                for buyer in range(num_users):
                    if matrix[buyer, slow] <= self.min_volume:
                        continue
                    for seller in range(num_users):
                        if seller == buyer or matrix[seller, fast] <= self.min_volume:
                            continue
                        gap = ratios[buyer] - ratios[seller]
                        if gap <= self.min_gap:
                            continue
                        price = 0.5 * (ratios[buyer] + ratios[seller])
                        fast_amount = min(
                            matrix[buyer, slow] / price, matrix[seller, fast]
                        )
                        if self.trade_lot > 0:
                            # whole-lot trading: round the paid slow share
                            # down to lot multiples; sub-lot trades abort
                            lots = np.floor(fast_amount * price / self.trade_lot)
                            fast_amount = lots * self.trade_lot / price
                        if fast_amount <= self.min_volume:
                            continue
                        candidate = Trade(
                            buyer=buyer,
                            seller=seller,
                            slow_type=slow,
                            fast_type=fast,
                            price=price,
                            slow_amount=fast_amount * price,
                            fast_amount=fast_amount,
                        )
                        if best is None or gap > best[0]:
                            best = (gap, candidate)
        return best[1] if best else None

    @staticmethod
    def _execute(matrix: np.ndarray, trade: Trade) -> None:
        matrix[trade.buyer, trade.slow_type] -= trade.slow_amount
        matrix[trade.seller, trade.slow_type] += trade.slow_amount
        matrix[trade.seller, trade.fast_type] -= trade.fast_amount
        matrix[trade.buyer, trade.fast_type] += trade.fast_amount
        # numerical hygiene: clip tiny negatives introduced by the arithmetic
        matrix[matrix < 0] = np.where(
            matrix[matrix < 0] > -1e-9, 0.0, matrix[matrix < 0]
        )
