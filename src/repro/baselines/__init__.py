"""Baseline schedulers the paper compares OEF against (§2.4, §6.1.3)."""

from repro.baselines.drf import DominantResourceFairness
from repro.baselines.gandiva_fair import GandivaFair, Trade
from repro.baselines.gavel import Gavel
from repro.baselines.maxmin import MaxMinFairness
from repro.baselines.nash import NashWelfare
from repro.core.cooperative import EfficiencyMaxAllocator

__all__ = [
    "DominantResourceFairness",
    "EfficiencyMaxAllocator",
    "GandivaFair",
    "Gavel",
    "MaxMinFairness",
    "NashWelfare",
    "Trade",
]
