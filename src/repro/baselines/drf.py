"""Dominant Resource Fairness applied to GPU types (§2.3.3 strawman).

The paper argues DRF and its variants are *unfit* for heterogeneous GPU
scheduling: DRF treats resource types as complementary (a job needing
network cannot run without network), but GPU types are *interchangeable* —
any job can run on any type, just at different speed.  This module
implements classic progressive-filling DRF over GPU types anyway, so the
claim can be audited quantitatively.

Each tenant's demand vector is derived from its speedup vector: the tenant
"wants" GPU types in proportion to the throughput they deliver (a natural
— and still wrong — encoding).  DRF then equalises dominant shares.  The
result is audited in ``tests/baselines/test_drf.py``: DRF wastes the
interchangeability (it pins fixed type *proportions* per tenant) and loses
efficiency against even Max-Min with trading.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.registry import register_scheduler


@register_scheduler(
    aliases=("dominant-resource",),
    family="baseline",
    description="Progressive-filling DRF over GPU types (§2.3.3 strawman)",
)
class DominantResourceFairness(Allocator):
    """Progressive-filling DRF with speedup-proportional demand vectors."""

    name = "drf"

    def __init__(self, step: float = 1e-3, max_steps: int = 1_000_000):
        self.step = step
        self.max_steps = max_steps

    def allocate(self, instance: ProblemInstance) -> Allocation:
        speedups = instance.speedups.values
        capacities = instance.capacities.astype(float)
        num_users, num_types = speedups.shape

        # demand vector per tenant: proportional to per-type throughput,
        # normalised so the dominant entry is 1 when divided by capacity
        demands = speedups / speedups.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore"):
            demand_shares = np.where(capacities > 0, demands / capacities, np.inf)
        dominant = demand_shares.max(axis=1)

        # progressive filling: every tenant's dominant share grows at the
        # same rate until some GPU type saturates.  With linear demands
        # this reduces to a single water-level computation per type.
        # level t means tenant l holds t * demands[l] / dominant[l].
        per_level_usage = (demands / dominant[:, None]).sum(axis=0)
        with np.errstate(divide="ignore"):
            level_limits = np.where(
                per_level_usage > 0, capacities / per_level_usage, np.inf
            )
        level = float(level_limits.min())
        matrix = level * demands / dominant[:, None]
        matrix = np.minimum(matrix, capacities)  # numerical guard
        return Allocation(matrix, instance, allocator_name=self.name)
