"""Gavel's heterogeneity-aware max-min policy (§2.4).

Gavel (Narayanan et al., OSDI '20) maximises the minimum *normalised*
throughput ratio across tenants, where each tenant's reference point is
its throughput under a 1/n equal partition:

    ratio_l = (W_l . x_l) / (W_l . m / n)

Phase 1 maximises ``min_l ratio_l`` as an LP.  The policy equalises the
ratio across tenants (the paper's Eq. (3) example: ratios 1.09/1.08/1.08),
so phase 2 pins every tenant's ratio to the phase-1 optimum ``c*`` and,
among those allocations, maximises total GPU usage (work conservation).
Pinning to the common ratio is what makes Gavel sharing-incentive
(``c* >= 1`` always, since the equal split itself achieves ratio 1) but —
as §2.4 shows — pareto-inefficient and manipulable.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.registry import register_scheduler
from repro.solver import LinearProgram, dot, lin_sum


@register_scheduler(
    family="baseline",
    description="Gavel's two-phase max-min-ratio LP baseline",
)
class Gavel(Allocator):
    """Two-phase max-min-ratio LP baseline.

    ``dense=True`` (default) emulates the interior-point solutions of the
    paper's artifact (cvxpy + ECOS): ratios are allowed to sit a small
    ``slack`` below the exact max-min optimum (the paper's Eq. (3) solution
    has ratios ~1.08 against an optimum of ~1.10 and leaves 1% of GPU2
    unused), and among those near-optimal points the allocation is spread
    across GPU types (each tenant holding up to its proportional
    ``m_j / n`` of a type earns a bonus).  This density is what causes
    Gavel's cross-type placements and its pareto-inefficiency in §2.4.
    ``dense=False`` returns a work-conserving simplex vertex instead —
    exactly ratio-pinned, and typically pareto-efficient.
    """

    name = "gavel"

    def __init__(self, backend: str = "auto", dense: bool = True, slack: float = 0.02):
        self.backend = backend
        self.dense = dense
        self.slack = slack

    def allocate(self, instance: ProblemInstance) -> Allocation:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape
        fair_share = instance.equal_split_throughput()

        if num_users == 1:
            matrix = instance.capacities.reshape(1, num_types).copy()
            return Allocation(matrix, instance, allocator_name=self.name)

        ratio = self._max_min_ratio(instance, fair_share)
        matrix = self._work_conserving_at_ratio(instance, fair_share, ratio)
        return Allocation(matrix, instance, allocator_name=self.name)

    # -- phase 1 ---------------------------------------------------------------
    def _max_min_ratio(self, instance: ProblemInstance, fair_share: np.ndarray) -> float:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape
        lp = LinearProgram("gavel-phase1")
        shares = lp.new_variable_array("x", (num_users, num_types), lower=0.0)
        ratio = lp.new_variable("c", lower=0.0)
        for type_index in range(num_types):
            lp.add_constraint(
                lin_sum(shares[:, type_index]) <= float(instance.capacities[type_index])
            )
        for user in range(num_users):
            lp.add_constraint(
                dot(speedups[user], shares[user]) - ratio * float(fair_share[user]) >= 0.0
            )
        lp.set_objective(ratio.to_expr(), sense="max")
        solution = lp.solve(backend=self.backend)
        return float(solution.value(ratio))

    # -- phase 2 ---------------------------------------------------------------
    def _work_conserving_at_ratio(
        self, instance: ProblemInstance, fair_share: np.ndarray, ratio: float
    ) -> np.ndarray:
        speedups = instance.speedups.values
        num_users, num_types = speedups.shape
        lp = LinearProgram("gavel-phase2")
        shares = lp.new_variable_array("x", (num_users, num_types), lower=0.0)
        for type_index in range(num_types):
            lp.add_constraint(
                lin_sum(shares[:, type_index]) <= float(instance.capacities[type_index])
            )
        # every tenant sits within a band of the common max-min ratio; the
        # dense variant may dip `slack` below the optimum (interior-point
        # behaviour), the vertex variant is pinned tight
        lower_band = self.slack if self.dense else 1e-6
        for user in range(num_users):
            target = ratio * float(fair_share[user])
            lp.add_constraint(
                dot(speedups[user], shares[user]) >= target * (1 - lower_band)
            )
            lp.add_constraint(dot(speedups[user], shares[user]) <= target * (1 + 1e-6))
        if self.dense:
            # spread bonus: y_lj <= min(x_lj, m_j / n) and maximise sum(y),
            # which emulates the dense mixes interior-point solvers return
            spread = lp.new_variable_array("y", (num_users, num_types), lower=0.0)
            for user in range(num_users):
                for type_index in range(num_types):
                    cap = float(instance.capacities[type_index]) / num_users
                    lp.add_constraint(
                        spread[user, type_index].to_expr()
                        - shares[user, type_index].to_expr()
                        <= 0.0
                    )
                    lp.add_constraint(spread[user, type_index] <= cap)
            objective = lin_sum(spread.ravel()) + 1e-3 * lin_sum(shares.ravel())
            lp.set_objective(objective, sense="max")
        else:
            lp.set_objective(lin_sum(shares.ravel()), sense="max")
        solution = lp.solve(backend=self.backend)
        return np.clip(solution.value(shares), 0.0, None)
