"""Max-Min fairness for interchangeable GPUs: the 1/n equal partition.

With a single interchangeable resource class (§2.3.3), classic max-min
fairness degenerates to handing every tenant an equal share of *every* GPU
type — this is the allocation the paper's Fig. 1(b) and §3.1.1 examples use
(e.g. ``X_f = [[0.5, 0.5], [0.5, 0.5]]``), and the baseline that
Gandiva_fair starts its trading from.
"""

from __future__ import annotations

import numpy as np

from repro.core.allocation import Allocation
from repro.core.base import Allocator
from repro.core.instance import ProblemInstance
from repro.registry import register_scheduler


@register_scheduler(
    aliases=("maxmin", "equal-share"),
    family="baseline",
    description="Equal 1/n split of every GPU type",
)
class MaxMinFairness(Allocator):
    """Equal 1/n split of every GPU type.

    Trivially SI (with equality), EF, and SP (the allocation ignores
    reported speedups entirely), but generally far from optimal efficiency
    — exactly the gap OEF closes.
    """

    name = "max-min"

    def allocate(self, instance: ProblemInstance) -> Allocation:
        num_users = instance.num_users
        matrix = np.tile(instance.capacities / num_users, (num_users, 1))
        return Allocation(matrix, instance, allocator_name=self.name)
