"""OEF: Optimal Resource Efficiency with Fairness in Heterogeneous GPU Clusters.

A full reproduction of the Middleware '24 paper by Mo, Xu, and Lau.  The
public API re-exports the pieces a downstream user needs:

* data model -- :class:`SpeedupMatrix`, :class:`ProblemInstance`,
  :class:`Allocation`;
* allocators -- :class:`NonCooperativeOEF`, :class:`CooperativeOEF`,
  :class:`WeightedOEF` and the baselines (:class:`MaxMinFairness`,
  :class:`GandivaFair`, :class:`Gavel`);
* fairness auditors -- :func:`audit_allocator` and the individual property
  checkers;
* the cluster runtime lives in :mod:`repro.cluster`, workload generators in
  :mod:`repro.workloads`, and paper experiments in :mod:`repro.experiments`.
"""

from repro.baselines import EfficiencyMaxAllocator, GandivaFair, Gavel, MaxMinFairness
from repro.core import (
    Allocation,
    Allocator,
    CooperativeOEF,
    JobTypeSpec,
    NonCooperativeOEF,
    ProblemInstance,
    PropertyReport,
    SpeedupMatrix,
    TenantSpec,
    VirtualUserExpansion,
    WeightedOEF,
    audit_allocator,
    check_envy_freeness,
    check_pareto_efficiency,
    check_sharing_incentive,
    check_strategy_proofness,
    optimal_efficiency_upper_bound,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "Allocator",
    "CooperativeOEF",
    "EfficiencyMaxAllocator",
    "GandivaFair",
    "Gavel",
    "JobTypeSpec",
    "MaxMinFairness",
    "NonCooperativeOEF",
    "ProblemInstance",
    "PropertyReport",
    "SpeedupMatrix",
    "TenantSpec",
    "VirtualUserExpansion",
    "WeightedOEF",
    "audit_allocator",
    "check_envy_freeness",
    "check_pareto_efficiency",
    "check_sharing_incentive",
    "check_strategy_proofness",
    "optimal_efficiency_upper_bound",
]
