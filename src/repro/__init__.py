"""OEF: Optimal Resource Efficiency with Fairness in Heterogeneous GPU Clusters.

A full reproduction of the Middleware '24 paper by Mo, Xu, and Lau.

The recommended entry point is the middleware-pipeline gateway (the
legacy :class:`SchedulingService` facade is a thin shim over one)::

    from repro import Gateway, default_pipeline

    gateway = Gateway(default_pipeline())
    response = gateway.solve(instance, "oef-coop")   # memoized by content hash
    response.disposition                             # "cold" / "cache-hit" / ...
    gateway.use(my_stage, before="solver")           # extend the pipeline

    from repro import SchedulingService

    service = SchedulingService()                    # same pipeline behind it
    report = service.audit(instance, "oef-noncoop")  # registry audit defaults
    rows = service.compare(instance)                 # every registered scheduler

Allocators self-register metadata (canonical name, aliases, family, audit
policy, capability flags) via :func:`repro.registry.register_scheduler`;
``repro list-schedulers`` on the command line renders the registry.

The public API re-exports the pieces a downstream user needs:

* facade -- :class:`SchedulingService` (``solve`` / ``solve_batch`` /
  ``resolve`` for incremental warm-started re-solves), :class:`SolveRequest`,
  :class:`SolveResult`, :class:`CacheStats`;
* registry -- :func:`create_scheduler`, :func:`scheduler_names`,
  :func:`scheduler_info`, :func:`register_scheduler`,
  :class:`SchedulerInfo`;
* data model -- :class:`SpeedupMatrix`, :class:`ProblemInstance`,
  :class:`Allocation`;
* allocators -- :class:`NonCooperativeOEF`, :class:`CooperativeOEF`,
  :class:`WeightedOEF` and the baselines (:class:`MaxMinFairness`,
  :class:`GandivaFair`, :class:`Gavel`);
* fairness auditors -- :func:`audit_allocator` and the individual property
  checkers, plus the continuous-auditing layer (:class:`AuditMiddleware`,
  :class:`AuditWorker`, :class:`AuditLedger`, :func:`replay_audit`; see
  :mod:`repro.auditor` and ``docs/auditing.md``);
* dynamic workloads -- :class:`Scenario`, :class:`ScenarioRunner`,
  :class:`ScenarioResult`, :func:`make_scenario`, :func:`scenario_names`,
  :func:`run_scenario`, :func:`scenario_sweep` (see :mod:`repro.scenarios`);
* the cluster runtime lives in :mod:`repro.cluster`, workload generators in
  :mod:`repro.workloads`, and paper experiments in :mod:`repro.experiments`.
"""

from repro.auditor import (
    AuditLedger,
    AuditMiddleware,
    AuditSampler,
    AuditWorker,
    replay_audit,
    summarize_records,
)
from repro.baselines import EfficiencyMaxAllocator, GandivaFair, Gavel, MaxMinFairness
from repro.core import (
    Allocation,
    Allocator,
    CooperativeOEF,
    JobTypeSpec,
    NonCooperativeOEF,
    ProblemInstance,
    PropertyReport,
    SpeedupMatrix,
    TenantSpec,
    VirtualUserExpansion,
    WeightedOEF,
    audit_allocator,
    check_envy_freeness,
    check_pareto_efficiency,
    check_sharing_incentive,
    check_strategy_proofness,
    optimal_efficiency_upper_bound,
)
from repro.gateway import (
    AdmissionMiddleware,
    CacheMiddleware,
    CoalesceMiddleware,
    Gateway,
    MetricsMiddleware,
    Middleware,
    Overloaded,
    Request,
    Response,
    SolverMiddleware,
    WarmStartMiddleware,
    bare_pipeline,
    default_pipeline,
)
from repro.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
    parallel_map,
)
from repro.registry import (
    SchedulerInfo,
    SchedulerRegistry,
    create_scheduler,
    register_scheduler,
    registry_rows,
    resolve_scheduler_name,
    scheduler_info,
    scheduler_names,
)
from repro.scenarios import (
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    make_scenario,
    run_scenario,
    scenario_names,
    scenario_sweep,
)
from repro.service import (
    CacheStats,
    SchedulingService,
    SolveRequest,
    SolveResult,
    instance_fingerprint,
    structural_fingerprint,
)
from repro.solver.warm import WarmStartState

__version__ = "1.9.0"

__all__ = [
    "AdmissionMiddleware",
    "Allocation",
    "Allocator",
    "AuditLedger",
    "AuditMiddleware",
    "AuditSampler",
    "AuditWorker",
    "CacheMiddleware",
    "CacheStats",
    "CoalesceMiddleware",
    "Gateway",
    "MetricsMiddleware",
    "Middleware",
    "Overloaded",
    "Request",
    "Response",
    "SolverMiddleware",
    "WarmStartMiddleware",
    "bare_pipeline",
    "default_pipeline",
    "CooperativeOEF",
    "EfficiencyMaxAllocator",
    "ExecutionBackend",
    "GandivaFair",
    "Gavel",
    "JobTypeSpec",
    "MaxMinFairness",
    "NonCooperativeOEF",
    "ProblemInstance",
    "ProcessBackend",
    "PropertyReport",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SchedulerInfo",
    "SchedulerRegistry",
    "SchedulingService",
    "SerialBackend",
    "SolveRequest",
    "SolveResult",
    "SpeedupMatrix",
    "ThreadBackend",
    "TenantSpec",
    "VirtualUserExpansion",
    "WarmStartState",
    "WeightedOEF",
    "audit_allocator",
    "check_envy_freeness",
    "check_pareto_efficiency",
    "check_sharing_incentive",
    "check_strategy_proofness",
    "create_scheduler",
    "get_backend",
    "instance_fingerprint",
    "make_scenario",
    "optimal_efficiency_upper_bound",
    "parallel_map",
    "register_scheduler",
    "registry_rows",
    "replay_audit",
    "resolve_scheduler_name",
    "run_scenario",
    "scenario_names",
    "scenario_sweep",
    "scheduler_info",
    "scheduler_names",
    "structural_fingerprint",
    "summarize_records",
]
