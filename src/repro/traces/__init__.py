"""Trace ingestion: normalize external cluster traces, store them as
``repro/trace-v1`` JSONL, and replay them as seeded ``trace:<name>``
scenarios (the generalization of the ``philly-replay`` special case).

Pipeline::

    repro ingest-trace jobs.csv --name prod-week
        normalize   (repro.traces.normalize: alias mapping, t=0 anchor)
      → store       (repro.traces.store:     schema-validated JSONL)
      → replay      (repro.traces.replay:    'trace:prod-week' scenario)
    repro simulate --scenario trace:prod-week
"""

from repro.traces.normalize import ingest_file, load_rows, normalize_rows
from repro.traces.replay import (
    TRACE_PREFIX,
    build_trace_replay,
    trace_rows,
    trace_scenario,
)
from repro.traces.store import (
    DEFAULT_TRACE_DIR,
    TRACE_DIR_ENV,
    TRACE_SCHEMA,
    TraceStore,
    validate_trace_record,
)

__all__ = [
    "DEFAULT_TRACE_DIR",
    "TRACE_DIR_ENV",
    "TRACE_PREFIX",
    "TRACE_SCHEMA",
    "TraceStore",
    "build_trace_replay",
    "ingest_file",
    "load_rows",
    "normalize_rows",
    "trace_rows",
    "trace_scenario",
    "validate_trace_record",
]
