"""The trace store: ingested cluster traces as ``repro/trace-v1`` JSONL.

One trace = one schema-validated JSONL file under the store root, one
line per job, written and read through the shared :mod:`repro.jsonlio`
primitives (the same append-fsync discipline as the benchmark and
audit ledgers).  The canonical record is deliberately tiny — the six
facts replay needs, nothing else::

    {"schema": "repro/trace-v1", "job_id": "j1", "tenant": "vc-a",
     "submit_s": 0.0, "duration_s": 1800.0, "num_workers": 1,
     "model": null}

``model`` is an optional zoo-model name; replay assigns a seeded model
from the catalog when a trace has none (external traces rarely name
reproducible model families).

``$REPRO_TRACE_DIR`` overrides where :meth:`TraceStore.default` looks;
an *empty* value disables default-store discovery (tier-1 test
isolation, the ledger convention).  Otherwise the default is the
``traces/`` directory relative to the current checkout.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional

from repro import jsonlio
from repro.exceptions import (
    TraceFormatError,
    UnknownTraceError,
    unknown_name_message,
)

#: Schema tag carried by every stored trace record.
TRACE_SCHEMA = "repro/trace-v1"

#: Environment variable naming the default trace-store directory.
#: Set to the empty string to disable default-store discovery.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: Default store location inside a repo checkout (relative to cwd).
DEFAULT_TRACE_DIR = "traces"


def _require(condition: bool, path: str, message: str) -> None:
    if not condition:
        raise TraceFormatError(f"{path}: {message}")


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace_record(record: Mapping[str, object]) -> None:
    """Reject anything that is not a well-formed ``repro/trace-v1`` job."""
    _require(isinstance(record, Mapping), "$", "record must be an object")
    _require(
        record.get("schema") == TRACE_SCHEMA,
        "schema",
        f"must be {TRACE_SCHEMA!r}, got {record.get('schema')!r}",
    )
    for key in ("job_id", "tenant"):
        value = record.get(key)
        _require(
            isinstance(value, str) and value != "",
            key,
            "must be a non-empty string",
        )
    submit = record.get("submit_s")
    _require(
        _is_number(submit) and float(submit) >= 0.0,
        "submit_s",
        "must be a number >= 0",
    )
    duration = record.get("duration_s")
    _require(
        _is_number(duration) and float(duration) > 0.0,
        "duration_s",
        "must be a number > 0",
    )
    workers = record.get("num_workers")
    _require(
        isinstance(workers, int)
        and not isinstance(workers, bool)
        and workers >= 1,
        "num_workers",
        "must be an integer >= 1",
    )
    model = record.get("model")
    _require(
        model is None or (isinstance(model, str) and model != ""),
        "model",
        "must be null or a non-empty string",
    )


class TraceStore:
    """Save, list, and load ingested traces in one directory."""

    def __init__(self, root: str):
        self.root = str(root)

    @classmethod
    def default(cls) -> Optional["TraceStore"]:
        """The conventional store for this invocation, if any.

        ``$REPRO_TRACE_DIR`` wins (empty value → ``None``, i.e. trace
        discovery disabled); otherwise ``traces/`` relative to the
        current directory — created on first ingest.
        """
        if TRACE_DIR_ENV in os.environ:
            value = os.environ[TRACE_DIR_ENV]
            return cls(value) if value else None
        return cls(DEFAULT_TRACE_DIR)

    # -- paths -----------------------------------------------------------

    def path_for(self, name: str) -> str:
        return os.path.join(self.root, jsonlio.safe_filename(name))

    def names(self) -> List[str]:
        """Ingested trace names, from the ``*.jsonl`` files on disk."""
        return jsonlio.list_streams(self.root)

    # -- reading ---------------------------------------------------------

    def load(self, name: str) -> List[Dict[str, object]]:
        """All validated job records of one trace, in stored order."""
        if name not in self.names():
            raise UnknownTraceError(
                unknown_name_message("trace", name, self.names())
                + f" (store: {self.root}; ingest with 'repro ingest-trace')"
            )
        return jsonlio.read_jsonl(
            self.path_for(name),
            validate=validate_trace_record,
            error_cls=TraceFormatError,
        )

    # -- writing ---------------------------------------------------------

    def save(
        self, name: str, records: List[Mapping[str, object]]
    ) -> str:
        """Write one trace (replacing any previous version); returns its path.

        Every record is validated before the first byte lands, so a save
        either stores the whole trace or nothing.
        """
        if not records:
            raise TraceFormatError(
                f"trace {name!r} has no job records after normalization"
            )
        for record in records:
            validate_trace_record(record)
        path = self.path_for(name)
        os.makedirs(self.root, exist_ok=True)
        if os.path.exists(path):
            os.remove(path)
        jsonlio.append_jsonl_lines(path, records)
        return path


__all__ = [
    "DEFAULT_TRACE_DIR",
    "TRACE_DIR_ENV",
    "TRACE_SCHEMA",
    "TraceStore",
    "validate_trace_record",
]
