"""Normalize external cluster-trace files into ``repro/trace-v1`` records.

Real traces (Philly, Helios, internal CSV dumps) agree on substance —
who submitted which job when, for how long, on how many GPUs — but not
on spelling.  The normalizer maps the common field spellings onto the
canonical record, shifts submit times so the earliest job lands at
t=0, and drops non-positive-duration rows (failed/cancelled jobs in
most public traces).  Anything structurally unusable raises
:class:`~repro.exceptions.TraceFormatError` with the offending row.

Two file formats are understood: CSV (header row required) and JSONL
(one object per line).  ``load_rows`` sniffs by extension; pass
``fmt`` to override.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import TraceFormatError
from repro.traces.store import TRACE_SCHEMA

#: Accepted spellings for each canonical field, tried in order.
FIELD_ALIASES: Dict[str, Tuple[str, ...]] = {
    "job_id": ("job_id", "jobid", "job", "id", "name"),
    "tenant": ("tenant", "user", "vc", "project", "queue"),
    "submit_s": (
        "submit_s",
        "submit_time",
        "submit",
        "submitted_time",
        "timestamp",
    ),
    "duration_s": (
        "duration_s",
        "duration",
        "run_time",
        "runtime",
        "duration_seconds",
    ),
    "num_workers": ("num_workers", "workers", "num_gpus", "gpus", "gpu_num"),
    "model": ("model", "model_name", "workload"),
}


def _pick(row: Mapping[str, object], field: str) -> object:
    for alias in FIELD_ALIASES[field]:
        if alias in row and row[alias] not in (None, ""):
            return row[alias]
    return None


def _as_float(value: object, where: str, field: str) -> float:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise TraceFormatError(
            f"{where}: field {field!r} is not a number ({value!r})"
        ) from None


def normalize_rows(
    rows: Iterable[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Raw mapping rows → validated, t=0-anchored ``repro/trace-v1`` records.

    Rows missing a job id get a positional one (``job<n>``); rows
    missing a tenant or submit/duration fields are a hard error — a
    trace without attribution or timing cannot be replayed fairly.
    Rows whose duration is ``<= 0`` are dropped (failed/cancelled jobs).
    """
    records: List[Dict[str, object]] = []
    for index, row in enumerate(rows, start=1):
        where = f"row {index}"
        tenant = _pick(row, "tenant")
        if tenant is None:
            raise TraceFormatError(
                f"{where}: no tenant field (looked for "
                f"{list(FIELD_ALIASES['tenant'])})"
            )
        submit = _pick(row, "submit_s")
        if submit is None:
            raise TraceFormatError(
                f"{where}: no submit-time field (looked for "
                f"{list(FIELD_ALIASES['submit_s'])})"
            )
        duration = _pick(row, "duration_s")
        if duration is None:
            raise TraceFormatError(
                f"{where}: no duration field (looked for "
                f"{list(FIELD_ALIASES['duration_s'])})"
            )
        duration_s = _as_float(duration, where, "duration_s")
        if duration_s <= 0.0:
            continue
        job_id = _pick(row, "job_id")
        workers = _pick(row, "num_workers")
        model = _pick(row, "model")
        records.append(
            {
                "schema": TRACE_SCHEMA,
                "job_id": str(job_id) if job_id is not None else f"job{index}",
                "tenant": str(tenant),
                "submit_s": _as_float(submit, where, "submit_s"),
                "duration_s": duration_s,
                "num_workers": (
                    max(1, int(_as_float(workers, where, "num_workers")))
                    if workers is not None
                    else 1
                ),
                "model": str(model) if model is not None else None,
            }
        )
    if records:
        origin = min(record["submit_s"] for record in records)
        for record in records:
            record["submit_s"] = float(record["submit_s"]) - origin
    return records


def load_rows(
    path: str, fmt: Optional[str] = None
) -> List[Dict[str, object]]:
    """Read raw rows from a CSV or JSONL trace file (sniffed by extension)."""
    if fmt is None:
        ext = os.path.splitext(path)[1].lower()
        fmt = {
            ".csv": "csv",
            ".jsonl": "jsonl",
            ".ndjson": "jsonl",
            ".json": "jsonl",
        }.get(ext)
        if fmt is None:
            raise TraceFormatError(
                f"cannot infer trace format from {path!r}; "
                "pass --format csv|jsonl"
            )
    if fmt == "csv":
        with open(path, "r", encoding="utf-8", newline="") as handle:
            return [dict(row) for row in csv.DictReader(handle)]
    if fmt == "jsonl":
        rows: List[Dict[str, object]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(
                        f"{path}:{lineno}: not valid JSON ({exc})"
                    ) from None
                if not isinstance(row, Mapping):
                    raise TraceFormatError(
                        f"{path}:{lineno}: expected a JSON object"
                    )
                rows.append(dict(row))
        return rows
    raise TraceFormatError(f"unknown trace format {fmt!r} (csv|jsonl)")


def ingest_file(
    path: str, fmt: Optional[str] = None
) -> List[Dict[str, object]]:
    """One-call path → validated ``repro/trace-v1`` records."""
    return normalize_rows(load_rows(path, fmt))


__all__ = [
    "FIELD_ALIASES",
    "ingest_file",
    "load_rows",
    "normalize_rows",
]
