"""Replay an ingested trace as a seeded ``trace:<name>`` scenario.

This generalizes the ``philly-replay`` special case: instead of a
synthetic Philly-*shaped* generator, any trace ingested through
``repro ingest-trace`` becomes a scenario.  The builder fits the trace
window onto the scenario horizon (submit times and durations scale
together), groups jobs by tenant, and routes dynamics through the same
event vocabulary every other scenario uses — tenants arriving after
t=0 enter via :class:`~repro.scenarios.events.TenantArrival`, jobs
submitted after their tenant's arrival via
:class:`~repro.scenarios.events.JobArrival`.

Determinism contract: the stored trace plus (seed, rounds,
round_duration) fully determine the event stream.  Trace records with
a ``model`` naming a zoo family use it; others get a seeded pick, so
external traces without model metadata still replay reproducibly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cluster.tenant import Tenant
from repro.cluster.topology import paper_cluster
from repro.exceptions import UnknownTraceError, unknown_name_message
from repro.scenarios.events import JobArrival, ScenarioEvent, TenantArrival
from repro.scenarios.scenario import Scenario, ScenarioScript
from repro.traces.store import TraceStore
from repro.workloads.generator import TenantGenerator
from repro.workloads.models import MODEL_CATALOG, all_models

#: ``make_scenario`` names with this prefix resolve through the store.
TRACE_PREFIX = "trace:"


def build_trace_replay(scenario: Scenario) -> ScenarioScript:
    """Materialise one ingested trace into a scenario script."""
    topology = paper_cluster()
    store = TraceStore(str(scenario.param("store_root")))
    records = store.load(str(scenario.param("trace")))
    generator = TenantGenerator(
        gpu_types=topology.gpu_type_names, seed=scenario.seed
    )
    rng = np.random.default_rng(scenario.seed)

    # fit the trace window onto the horizon: submit times and durations
    # scale together, so relative load shape is preserved
    span = max(
        float(r["submit_s"]) + float(r["duration_s"]) for r in records
    )
    scale = scenario.horizon / span if span > 0 else 1.0

    by_tenant: Dict[str, List[dict]] = {}
    for record in records:
        by_tenant.setdefault(str(record["tenant"]), []).append(record)

    arrivals = {
        tenant: min(float(r["submit_s"]) for r in jobs) * scale
        for tenant, jobs in by_tenant.items()
    }
    initial: List[Tenant] = []
    events: List[ScenarioEvent] = []
    for name in sorted(by_tenant, key=lambda t: (arrivals[t], t)):
        jobs = sorted(
            by_tenant[name],
            key=lambda r: (float(r["submit_s"]), str(r["job_id"])),
        )
        model = jobs[0].get("model")
        if not isinstance(model, str) or model not in MODEL_CATALOG:
            model = str(rng.choice(all_models()))
        arrival = arrivals[name]
        tenant = Tenant(name=name, arrival_time=arrival)
        late_jobs = []
        for record in jobs:
            submit = float(record["submit_s"]) * scale
            job = generator.make_job(
                name,
                model,
                num_workers=int(record["num_workers"]),
                duration_on_slowest=float(record["duration_s"]) * scale,
                submit_time=submit,
            )
            if submit > arrival:
                late_jobs.append((submit, job))
            else:
                tenant.add_job(job)
        if arrival <= 0.0:
            initial.append(tenant)
        else:
            # clamp admission to the last round start (jobs honour their
            # own submit times) so no arrival is lost at tiny --rounds
            events.append(
                TenantArrival(
                    time=min(arrival, scenario.last_round_start),
                    tenant=tenant,
                )
            )
        for submit, job in late_jobs:
            events.append(
                JobArrival(
                    time=min(submit, scenario.last_round_start),
                    tenant_name=name,
                    job=job,
                )
            )
    # stable by time: a tenant's arrival was appended before its late
    # jobs, so same-instant events still admit the tenant first
    events.sort(key=lambda event: event.time)
    return ScenarioScript(topology, tuple(initial), tuple(events))


def trace_scenario(
    name: str,
    *,
    seed: int = 0,
    rounds: Optional[int] = None,
    round_duration: float = 300.0,
    store_root: Optional[str] = None,
) -> Scenario:
    """A seeded ``trace:<name>`` recipe over one ingested trace.

    ``store_root`` overrides the conventional store
    (``$REPRO_TRACE_DIR`` / ``traces/``).  Unknown names — and a
    disabled store — raise :class:`~repro.exceptions.UnknownTraceError`
    at recipe-construction time, so CLIs fail before any simulation
    starts.
    """
    if store_root is not None:
        store: Optional[TraceStore] = TraceStore(str(store_root))
    else:
        store = TraceStore.default()
    if store is None:
        raise UnknownTraceError(
            f"no trace store configured for 'trace:{name}'; set "
            f"$REPRO_TRACE_DIR or pass store_root"
        )
    known = store.names()
    if name not in known:
        raise UnknownTraceError(
            unknown_name_message("trace", name, known)
            + f" (store: {store.root}; ingest with 'repro ingest-trace')"
        )
    return Scenario(
        name=f"{TRACE_PREFIX}{name}",
        builder=build_trace_replay,
        seed=int(seed),
        num_rounds=int(rounds) if rounds is not None else 24,
        round_duration=float(round_duration),
        params=(("store_root", store.root), ("trace", name)),
        description=f"replay of ingested trace {name!r}",
    )


def trace_rows(store: Optional[TraceStore] = None) -> List[Dict[str, object]]:
    """``repro list-scenarios`` rows for every ingested trace."""
    store = store if store is not None else TraceStore.default()
    if store is None:
        return []
    rows = []
    for name in store.names():
        rows.append(
            {
                "name": f"{TRACE_PREFIX}{name}",
                "family": "trace",
                "rounds": 24,
                "params": f"store_root={store.root}",
                "description": f"replay of ingested trace {name!r}",
            }
        )
    return rows


__all__ = [
    "TRACE_PREFIX",
    "build_trace_replay",
    "trace_rows",
    "trace_scenario",
]
