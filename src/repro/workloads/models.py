"""The model zoo: synthetic per-GPU-type throughput tables.

Substitutes the paper's hardware profiling runs (DESIGN.md §2).  Numbers
are iterations/second for one worker and are calibrated so the *speedup
shapes* match what the paper reports: Fig. 1(a) shows VGG at 1.39x and
LSTM at 2.15x on an RTX 3090 relative to a 3070 — vision models are
memory-bound and gain little from newer GPUs, language models are
compute-bound and gain a lot.

Beyond the paper's three GPU types, the table extends to ten generations
(for the Fig. 10a scalability experiment, which fixes ten GPU types) via a
roofline-style model: each GPU has a compute scale and a bandwidth scale,
each model has a compute intensity, and throughput follows the harmonic
blend of the two.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import ValidationError

# GPU generations, slowest first.  (compute scale, bandwidth scale) are
# relative to the RTX 3070.
GPU_CATALOG: Dict[str, tuple] = {
    # both scales increase along the catalog so every roofline blend is
    # monotone — the slowest-type-first assumption of §2.3 (footnote 1)
    "k80": (0.30, 0.35),
    "t4": (0.50, 0.52),
    "p100": (0.70, 0.70),
    "v100": (0.90, 0.85),
    "rtx3070": (1.00, 1.00),
    "rtx3080": (1.55, 1.24),
    "rtx3090": (2.15, 1.39),
    "a100": (2.90, 1.80),
    "h100": (4.20, 2.40),
    "b200": (6.00, 3.20),
}

#: The paper's testbed types, slowest first.
PAPER_GPU_TYPES: List[str] = ["rtx3070", "rtx3080", "rtx3090"]

# model -> (base iterations/sec on rtx3070, compute intensity in [0, 1])
# intensity 0 = fully bandwidth-bound, 1 = fully compute-bound.
MODEL_CATALOG: Dict[str, tuple] = {
    # image classification on CIFAR-100
    "vgg11": (3.0, 0.02),
    "vgg16": (2.4, 0.00),
    "vgg19": (2.1, 0.00),
    "resnet18": (4.2, 0.08),
    "resnet50": (3.1, 0.15),
    "densenet121": (2.7, 0.05),
    # language modelling on WikiText-2
    "rnn": (7.5, 0.80),
    "lstm": (8.5, 1.00),
    "transformer": (5.2, 0.90),
    "gnmt": (4.0, 0.70),
}


def gpu_rank(gpu_type: str) -> int:
    """Position of a GPU type in the slowest-first catalog order."""
    names = list(GPU_CATALOG.keys())
    try:
        return names.index(gpu_type)
    except ValueError:
        raise ValidationError(f"unknown GPU type {gpu_type!r}") from None


def _device_speed(gpu_type: str, intensity: float) -> float:
    """Roofline blend: harmonic mix of compute and bandwidth scaling."""
    compute, bandwidth = GPU_CATALOG[gpu_type]
    return 1.0 / (intensity / compute + (1.0 - intensity) / bandwidth)


def throughput_vector(
    model_name: str, gpu_types: Sequence[str] = PAPER_GPU_TYPES
) -> np.ndarray:
    """Iterations/sec per worker for one model across GPU types.

    ``gpu_types`` must be ordered slowest-first (catalog order); the
    resulting vector is then non-decreasing, as speedup matrices require.
    """
    if model_name not in MODEL_CATALOG:
        raise ValidationError(f"unknown model {model_name!r}")
    ranks = [gpu_rank(name) for name in gpu_types]
    if ranks != sorted(ranks):
        raise ValidationError("gpu_types must be ordered slowest first")
    base_rate, intensity = MODEL_CATALOG[model_name]
    reference = _device_speed("rtx3070", intensity)
    return np.asarray(
        [base_rate * _device_speed(name, intensity) / reference for name in gpu_types]
    )


def speedup_vector(
    model_name: str, gpu_types: Sequence[str] = PAPER_GPU_TYPES
) -> np.ndarray:
    """Normalised speedups (slowest type = 1) for one model."""
    vector = throughput_vector(model_name, gpu_types)
    return vector / vector[0]


def all_models() -> List[str]:
    return list(MODEL_CATALOG.keys())


def vision_models() -> List[str]:
    return ["vgg11", "vgg16", "vgg19", "resnet18", "resnet50", "densenet121"]


def language_models() -> List[str]:
    return ["rnn", "lstm", "transformer", "gnmt"]
