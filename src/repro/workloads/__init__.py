"""Workload substrates: model zoo, instance generators, Philly-like traces."""

from repro.workloads.generator import (
    TenantGenerator,
    random_instance,
    random_speedup_matrix,
    zoo_instance,
)
from repro.workloads.models import (
    GPU_CATALOG,
    MODEL_CATALOG,
    PAPER_GPU_TYPES,
    all_models,
    gpu_rank,
    language_models,
    speedup_vector,
    throughput_vector,
    vision_models,
)
from repro.workloads.philly import PhillyTraceConfig, PhillyTraceGenerator

__all__ = [
    "GPU_CATALOG",
    "MODEL_CATALOG",
    "PAPER_GPU_TYPES",
    "PhillyTraceConfig",
    "PhillyTraceGenerator",
    "TenantGenerator",
    "all_models",
    "gpu_rank",
    "language_models",
    "random_instance",
    "random_speedup_matrix",
    "speedup_vector",
    "throughput_vector",
    "vision_models",
    "zoo_instance",
]
