"""Random instance and tenant generators for experiments and tests."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.job import Job, make_job
from repro.cluster.tenant import Tenant
from repro.core.instance import ProblemInstance
from repro.core.speedup import SpeedupMatrix
from repro.exceptions import ValidationError
from repro.workloads.models import (
    MODEL_CATALOG,
    PAPER_GPU_TYPES,
    all_models,
    throughput_vector,
)


def random_speedup_matrix(
    num_users: int,
    num_gpu_types: int,
    rng: np.random.Generator,
    max_step: float = 1.0,
) -> SpeedupMatrix:
    """A random valid speedup matrix (monotone rows, slowest type = 1).

    Each row is a cumulative product of per-type gains drawn from
    ``1 + U(0, max_step)``, mimicking the "almost no speedup to several
    times" spread the paper describes (§1).
    """
    if num_users < 1 or num_gpu_types < 1:
        raise ValidationError("need at least one user and one GPU type")
    gains = 1.0 + rng.uniform(0.0, max_step, size=(num_users, num_gpu_types))
    gains[:, 0] = 1.0
    values = np.cumprod(gains, axis=1)
    return SpeedupMatrix(values, normalise=False, require_monotone=True)


def log_linear_speedup_matrix(
    num_users: int,
    num_gpu_types: int,
    rng: np.random.Generator,
    max_steepness: float = 2.0,
) -> SpeedupMatrix:
    """Speedups of the form ``w_l^j = base_j ** s_l`` (consistent steepness).

    Under this family every pair of users agrees on which of them values a
    faster type *relatively* more (their speedup ratios never cross), the
    structural assumption behind Theorem 5.2's adjacent-allocation result.
    Real model zoos are approximately of this shape: "steepness" is the
    compute-boundedness of the model.
    """
    if num_users < 1 or num_gpu_types < 1:
        raise ValidationError("need at least one user and one GPU type")
    bases = np.cumprod(
        np.concatenate([[1.0], 1.0 + rng.uniform(0.1, 0.6, num_gpu_types - 1)])
    )
    steepness = np.sort(rng.uniform(0.1, max_steepness, num_users))
    values = bases[None, :] ** steepness[:, None]
    return SpeedupMatrix(values, normalise=True, require_monotone=True)


def random_instance(
    num_users: int,
    num_gpu_types: int,
    seed: int = 0,
    devices_per_type: float = 8.0,
    max_step: float = 1.0,
) -> ProblemInstance:
    """A random allocation problem for property audits and fuzz tests."""
    rng = np.random.default_rng(seed)
    matrix = random_speedup_matrix(num_users, num_gpu_types, rng, max_step)
    capacities = np.full(num_gpu_types, float(devices_per_type))
    return ProblemInstance(matrix, capacities)


def zoo_instance(
    model_names: Sequence[str],
    gpu_types: Sequence[str] = PAPER_GPU_TYPES,
    capacities: Optional[Sequence[float]] = None,
) -> ProblemInstance:
    """An instance whose users each train one model from the zoo."""
    rows = [throughput_vector(name, gpu_types) for name in model_names]
    matrix = SpeedupMatrix(
        np.vstack(rows),
        users=[f"{name}-user" for name in model_names],
        gpu_types=list(gpu_types),
        normalise=True,
    )
    if capacities is None:
        capacities = np.full(len(gpu_types), 8.0)
    return ProblemInstance(matrix, capacities)


class TenantGenerator:
    """Builds tenant populations with zoo-model jobs.

    The paper's evaluation uses tenants that each own a batch of jobs of
    the *same* model family (hyper-parameter sweeps, §2.1); job-level
    variation comes from batch size and learning rate, which perturb base
    throughput but not the speedup shape.
    """

    def __init__(
        self,
        gpu_types: Sequence[str] = PAPER_GPU_TYPES,
        seed: int = 0,
        hyperparameter_jitter: float = 0.15,
    ):
        self.gpu_types = list(gpu_types)
        self.rng = np.random.default_rng(seed)
        self.jitter = hyperparameter_jitter
        self._next_job_id = 0

    def _job_throughput(self, model_name: str) -> np.ndarray:
        base = throughput_vector(model_name, self.gpu_types)
        # hyper-parameter perturbation scales absolute speed, not shape
        factor = 1.0 + self.rng.uniform(-self.jitter, self.jitter)
        return base * factor

    def make_job(
        self,
        tenant: str,
        model_name: str,
        num_workers: int = 1,
        duration_on_slowest: float = 3600.0,
        submit_time: float = 0.0,
    ) -> Job:
        """A job sized so one slowest-type worker finishes in ``duration``."""
        throughput = self._job_throughput(model_name)
        total_iterations = float(throughput[0]) * duration_on_slowest
        job = make_job(
            job_id=self._next_job_id,
            tenant=tenant,
            model_name=model_name,
            throughput=throughput,
            num_workers=num_workers,
            total_iterations=total_iterations,
            submit_time=submit_time,
        )
        self._next_job_id += 1
        return job

    def make_tenant(
        self,
        name: str,
        model_name: Optional[str] = None,
        num_jobs: int = 4,
        weight: float = 1.0,
        num_workers: int = 1,
        duration_on_slowest: float = 3600.0,
        submit_time: float = 0.0,
    ) -> Tenant:
        """A tenant running ``num_jobs`` hyper-parameter variants."""
        if model_name is None:
            model_name = str(self.rng.choice(all_models()))
        if model_name not in MODEL_CATALOG:
            raise ValidationError(f"unknown model {model_name!r}")
        tenant = Tenant(name=name, weight=weight, arrival_time=submit_time)
        for _ in range(num_jobs):
            tenant.add_job(
                self.make_job(
                    name,
                    model_name,
                    num_workers=num_workers,
                    duration_on_slowest=duration_on_slowest,
                    submit_time=submit_time,
                )
            )
        return tenant

    def make_population(
        self,
        num_tenants: int,
        models: Optional[Sequence[str]] = None,
        jobs_per_tenant: int = 4,
        duration_on_slowest: float = 3600.0,
    ) -> List[Tenant]:
        """``num_tenants`` tenants cycling through the given model list."""
        models = list(models) if models else all_models()
        tenants = []
        for index in range(num_tenants):
            tenants.append(
                self.make_tenant(
                    name=f"tenant{index + 1}",
                    model_name=models[index % len(models)],
                    num_jobs=jobs_per_tenant,
                    duration_on_slowest=duration_on_slowest,
                )
            )
        return tenants
