"""A Philly-like synthetic trace generator (DESIGN.md §2 substitution).

The paper keeps "cluster contention levels consistent with those observed
in Microsoft's Philly trace" (§6.1.2) for the JCT experiment.  The trace
itself is not redistributable here, so this module generates synthetic
populations with the trace's well-known statistical shape (Jeon et al.,
ATC '19):

* job *durations* are heavy-tailed — lognormal, spanning minutes to days;
* *worker counts* are dominated by 1-GPU jobs, with a minority of 2/4/8-
  worker distributed jobs;
* tenant *arrivals* follow a Poisson process over the experiment window;
* a ``contention`` knob scales offered load relative to cluster capacity
  (1.0 = offered GPU-hours roughly equal capacity over the window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.tenant import Tenant
from repro.exceptions import ValidationError
from repro.workloads.generator import TenantGenerator
from repro.workloads.models import PAPER_GPU_TYPES, all_models

# Philly-shaped worker-count distribution (ATC '19, Fig. 2: the vast
# majority of jobs use a single GPU).
_WORKER_CHOICES = np.array([1, 2, 4, 8])
_WORKER_PROBS = np.array([0.75, 0.13, 0.09, 0.03])


@dataclass
class PhillyTraceConfig:
    """Shape parameters of one synthetic trace."""

    num_tenants: int = 50
    jobs_per_tenant_mean: float = 20.0
    window_seconds: float = 3 * 24 * 3600.0  # the paper's three-day run
    duration_median_seconds: float = 2 * 3600.0
    duration_sigma: float = 1.1  # lognormal sigma (heavy tail)
    contention: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValidationError("num_tenants must be >= 1")
        if self.jobs_per_tenant_mean <= 0:
            raise ValidationError("jobs_per_tenant_mean must be positive")
        if self.window_seconds <= 0 or self.duration_median_seconds <= 0:
            raise ValidationError("durations must be positive")
        if self.contention <= 0:
            raise ValidationError("contention must be positive")


class PhillyTraceGenerator:
    """Generates tenant populations with Philly-shaped load."""

    def __init__(
        self,
        config: Optional[PhillyTraceConfig] = None,
        gpu_types: Sequence[str] = PAPER_GPU_TYPES,
        cluster_devices: float = 24.0,
    ):
        self.config = config or PhillyTraceConfig()
        self.gpu_types = list(gpu_types)
        self.cluster_devices = float(cluster_devices)
        self.rng = np.random.default_rng(self.config.seed)
        self._tenant_factory = TenantGenerator(
            gpu_types=gpu_types, seed=self.config.seed + 1
        )

    # -- sampling primitives -----------------------------------------------------
    def sample_duration(self) -> float:
        """Lognormal job duration (seconds on the slowest GPU type)."""
        mu = np.log(self.config.duration_median_seconds)
        return float(self.rng.lognormal(mean=mu, sigma=self.config.duration_sigma))

    def sample_workers(self) -> int:
        return int(self.rng.choice(_WORKER_CHOICES, p=_WORKER_PROBS))

    def sample_arrivals(self) -> np.ndarray:
        """Poisson tenant arrival times across the first half of the window.

        Arrivals stop at half the window so late tenants have a chance to
        finish inside it, matching the paper's tenants-exit-on-completion
        setup.
        """
        horizon = self.config.window_seconds / 2.0
        times = np.sort(
            self.rng.uniform(0.0, horizon, size=self.config.num_tenants)
        )
        times[0] = 0.0  # the cluster is never empty at t=0
        return times

    # -- trace assembly -------------------------------------------------------------
    def generate(self) -> List[Tenant]:
        """A full tenant population calibrated to the contention target.

        Offered load = sum of (duration x workers) over all jobs; the
        durations are scaled so offered GPU-seconds equal
        ``contention x capacity x window``.
        """
        config = self.config
        arrivals = self.sample_arrivals()
        models = all_models()

        plans = []  # (tenant index, model, arrival, [(duration, workers)])
        offered = 0.0
        for index in range(config.num_tenants):
            num_jobs = max(1, int(self.rng.poisson(config.jobs_per_tenant_mean)))
            jobs = []
            for _ in range(num_jobs):
                duration = self.sample_duration()
                workers = self.sample_workers()
                jobs.append((duration, workers))
                offered += duration * workers
            plans.append(
                (index, models[index % len(models)], float(arrivals[index]), jobs)
            )

        target = config.contention * self.cluster_devices * config.window_seconds
        scale = target / offered if offered > 0 else 1.0

        tenants: List[Tenant] = []
        for index, model, arrival, jobs in plans:
            tenant = Tenant(name=f"tenant{index + 1}", arrival_time=arrival)
            for duration, workers in jobs:
                tenant.add_job(
                    self._tenant_factory.make_job(
                        tenant.name,
                        model,
                        num_workers=workers,
                        duration_on_slowest=max(60.0, duration * scale),
                        submit_time=arrival,
                    )
                )
            tenants.append(tenant)
        return tenants

    def offered_load(self, tenants: Sequence[Tenant]) -> float:
        """Offered GPU-seconds / (capacity x window) — the realised contention."""
        total = sum(
            job.total_iterations / job.true_throughput[0] * job.num_workers
            for tenant in tenants
            for job in tenant.jobs
        )
        return total / (self.cluster_devices * self.config.window_seconds)
