"""Replay a Philly-like trace and compare long-run JCT across schedulers.

Generates a synthetic multi-tenant trace with Philly-shaped statistics
(heavy-tailed durations, mostly single-GPU jobs, Poisson arrivals) and
replays it under OEF and both heterogeneity-aware baselines — a compact
version of the paper's Fig. 9 experiment.

Run:  python examples/philly_trace_replay.py
"""

from repro.cluster import ClusterSimulator, SimulationConfig, paper_cluster
from repro.experiments.common import baseline_stack, oef_stack
from repro.workloads import PhillyTraceConfig, PhillyTraceGenerator

TRACE = PhillyTraceConfig(
    num_tenants=10,
    jobs_per_tenant_mean=5.0,
    window_seconds=6 * 3600.0,
    contention=0.6,
    seed=9,
)


def replay(label: str, scheduler, placer, use_min_demand: bool) -> None:
    topology = paper_cluster()
    tenants = PhillyTraceGenerator(
        config=TRACE, cluster_devices=topology.num_devices
    ).generate()
    simulator = ClusterSimulator(
        topology,
        tenants,
        scheduler,
        placer=placer,
        config=SimulationConfig(
            num_rounds=int(TRACE.window_seconds / 300 * 3),
            stop_when_idle=True,
            use_min_demand_rule=use_min_demand,
        ),
    )
    metrics = simulator.run()
    print(
        f"{label:<14} mean JCT {metrics.mean_jct() / 3600.0:6.2f} h   "
        f"jobs finished {len(metrics.completions):4d}   "
        f"starvation-rounds {metrics.total_starvation_rounds():4d}"
    )


def main() -> None:
    topology = paper_cluster()
    print(f"cluster: {topology.summary()}")
    scheduler, placer = oef_stack(topology, "cooperative")
    replay("OEF", scheduler, placer, use_min_demand=True)
    for name in ("gandiva", "gavel"):
        scheduler, placer = baseline_stack(paper_cluster(), name)
        replay(name.capitalize(), scheduler, placer, use_min_demand=False)


if __name__ == "__main__":
    main()
