"""Quickstart: allocate a heterogeneous GPU cluster through the service facade.

Builds the paper's running example (three tenants, two GPU types), solves
it with every registered scheduler in one ``solve_batch`` call, audits
cooperative OEF with its registry-sourced audit policy, and shows the
content-hash allocation cache at work.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ProblemInstance,
    SchedulingService,
    SpeedupMatrix,
    scheduler_names,
)


def main() -> None:
    # one row per tenant, one column per GPU type (slowest first); rows are
    # normalised so the slowest type has speedup 1
    speedups = SpeedupMatrix(
        [
            [1.0, 2.0],  # e.g. a VGG-style job: modest gain on the fast GPU
            [1.0, 3.0],
            [1.0, 4.0],  # e.g. an LSTM-style job: large gain
        ],
        users=["alice", "bob", "carol"],
        gpu_types=["rtx3070", "rtx3090"],
    )
    instance = ProblemInstance(speedups, capacities=[1.0, 1.0])

    service = SchedulingService()

    print("=== allocations (one solve_batch over every registered scheduler) ===")
    for result in service.solve_batch(instance, scheduler_names()):
        allocation = result.allocation
        throughput = np.round(allocation.user_throughput(), 3)
        print(f"{result.scheduler:>14}:  X =")
        for user, row in zip(speedups.users, np.round(allocation.matrix, 3)):
            print(f"{'':>16}{user:<6} {row}")
        print(
            f"{'':>16}throughput per tenant = {throughput}, "
            f"total = {allocation.total_efficiency():.3f}"
        )

    print("\n=== Table-1 property audit (cooperative OEF) ===")
    # pe_within / efficiency_constraint come from the registry metadata
    report = service.audit(instance, "oef-coop")
    for key, value in report.as_row().items():
        print(f"  {key}: {value}")

    stats = service.cache_info()
    print(
        f"\ncache: {stats.hits} hits / {stats.misses} misses "
        f"(the audit reused the batch's oef-coop solve)"
    )


if __name__ == "__main__":
    main()
