"""Quickstart: allocate a heterogeneous GPU cluster with OEF.

Builds the paper's running example (three tenants, two GPU types), runs
OEF in both environments plus all baselines, and audits every fairness
property of Table 1.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CooperativeOEF,
    GandivaFair,
    Gavel,
    MaxMinFairness,
    NonCooperativeOEF,
    ProblemInstance,
    SpeedupMatrix,
    audit_allocator,
)


def main() -> None:
    # one row per tenant, one column per GPU type (slowest first); rows are
    # normalised so the slowest type has speedup 1
    speedups = SpeedupMatrix(
        [
            [1.0, 2.0],  # e.g. a VGG-style job: modest gain on the fast GPU
            [1.0, 3.0],
            [1.0, 4.0],  # e.g. an LSTM-style job: large gain
        ],
        users=["alice", "bob", "carol"],
        gpu_types=["rtx3070", "rtx3090"],
    )
    instance = ProblemInstance(speedups, capacities=[1.0, 1.0])

    print("=== allocations ===")
    for allocator in (
        NonCooperativeOEF(),
        CooperativeOEF(),
        MaxMinFairness(),
        GandivaFair(),
        Gavel(),
    ):
        allocation = allocator.allocate(instance)
        throughput = np.round(allocation.user_throughput(), 3)
        print(f"{allocator.name:>14}:  X =")
        for user, row in zip(speedups.users, np.round(allocation.matrix, 3)):
            print(f"{'':>16}{user:<6} {row}")
        print(
            f"{'':>16}throughput per tenant = {throughput}, "
            f"total = {allocation.total_efficiency():.3f}"
        )

    print("\n=== Table-1 property audit (cooperative OEF) ===")
    report = audit_allocator(
        CooperativeOEF(), instance, efficiency_constraint="envy_free",
        pe_within="envy_free",
    )
    for key, value in report.as_row().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
