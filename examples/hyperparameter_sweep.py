"""Hyper-parameter sweep tenants on a simulated 24-GPU cluster (§2.1).

The paper's motivating workload: ~90% of production jobs are recurring
hyper-parameter search batches, so each tenant owns a batch of
same-model jobs that accelerate identically.  This example simulates four
such tenants on the paper's testbed (8x 3070 + 8x 3080 + 8x 3090) and
compares cooperative OEF against Max-Min fairness.

Run:  python examples/hyperparameter_sweep.py
"""

from repro.cluster import (
    ClusterSimulator,
    Placer,
    PlacementPolicy,
    SimulationConfig,
    make_fair_share_scheduler,
    paper_cluster,
)
from repro.workloads import TenantGenerator

SWEEPS = {
    "vision-team": ("resnet50", 8),      # 8 learning-rate variants
    "detection-team": ("vgg16", 6),
    "nlp-team": ("transformer", 8),
    "speech-team": ("lstm", 6),
}


def build_tenants(seed: int):
    generator = TenantGenerator(seed=seed)
    return [
        generator.make_tenant(
            name, model_name=model, num_jobs=num_jobs,
            duration_on_slowest=6 * 3600.0,
        )
        for name, (model, num_jobs) in SWEEPS.items()
    ]


def run(scheduler, label: str, seed: int = 42) -> None:
    topology = paper_cluster()
    placer = Placer(
        topology,
        policy=PlacementPolicy.oef() if "OEF" in label else PlacementPolicy.naive(),
    )
    simulator = ClusterSimulator(
        topology,
        build_tenants(seed),
        scheduler,
        placer=placer,
        config=SimulationConfig(num_rounds=96, stop_when_idle=True),
    )
    metrics = simulator.run()
    print(f"--- {label} ---")
    for tenant in SWEEPS:
        jcts = metrics.jcts(tenant)
        mean_jct = sum(jcts) / len(jcts) / 3600.0 if jcts else float("nan")
        print(
            f"  {tenant:<16} mean throughput "
            f"{metrics.mean_tenant_throughput(tenant):6.2f}  "
            f"mean JCT {mean_jct:5.2f} h  jobs done {len(jcts)}"
        )
    print(
        f"  cluster: mean total throughput {metrics.mean_total_actual():.2f}, "
        f"makespan {metrics.makespan() / 3600.0:.2f} h"
    )


def build_simulator(seed: int) -> ClusterSimulator:
    """Module-level factory so `run_sweep` can ship it to process workers."""
    topology = paper_cluster()
    return ClusterSimulator(
        topology,
        build_tenants(seed),
        make_fair_share_scheduler("oef-coop"),
        placer=Placer(topology, policy=PlacementPolicy.oef()),
        config=SimulationConfig(num_rounds=96, stop_when_idle=True),
    )


def monte_carlo(seeds=range(4)) -> None:
    """Seed-sweep the OEF stack across cores (`backend="auto"`)."""
    collectors = ClusterSimulator.run_sweep(build_simulator, seeds, backend="auto")
    throughputs = [m.mean_total_actual() for m in collectors]
    mean = sum(throughputs) / len(throughputs)
    spread = max(throughputs) - min(throughputs)
    print(
        f"--- Monte-Carlo over {len(throughputs)} seeds ---\n"
        f"  mean cluster throughput {mean:.2f} "
        f"(min {min(throughputs):.2f}, max {max(throughputs):.2f}, "
        f"spread {spread:.2f})"
    )


def main() -> None:
    # registry names (or aliases) are all a caller needs
    run(make_fair_share_scheduler("oef-coop"), "cooperative OEF + OEF placer")
    run(make_fair_share_scheduler("max-min"), "Max-Min + naive placer")
    monte_carlo()


if __name__ == "__main__":
    main()
