"""Weighted OEF: priorities and multiple job types per tenant (§4.2.3–4).

A production tenant pays for 2x priority; another trains two different
model families at once.  Weighted OEF handles both by replicating speedup
vectors into virtual users, preserving every fairness property.

Run:  python examples/priority_tenants.py
"""

from repro import JobTypeSpec, TenantSpec, WeightedOEF


def main() -> None:
    tenants = [
        # a premium tenant with double weight
        TenantSpec.single("premium", [1.0, 1.6, 2.15], weight=2.0),
        # a tenant training two model families simultaneously; its unit
        # weight is split between them (half each)
        TenantSpec.of(
            "mixed",
            [
                JobTypeSpec.of("vision", [1.0, 1.2, 1.39]),
                JobTypeSpec.of("language", [1.0, 1.5, 1.95]),
            ],
        ),
        TenantSpec.single("basic", [1.0, 1.25, 1.45]),
    ]
    capacities = [8.0, 8.0, 8.0]

    for mode in ("noncooperative", "cooperative"):
        merged = WeightedOEF(mode=mode).allocate(tenants, capacities)
        print(f"=== {mode} weighted OEF ===")
        for tenant in tenants:
            share = merged.tenant_shares[tenant.name].round(2)
            throughput = merged.tenant_throughput[tenant.name]
            print(f"  {tenant.name:<8} share {share}  throughput {throughput:6.3f}")
            for job_type, job_tp in merged.job_type_throughput[tenant.name].items():
                if len(merged.job_type_throughput[tenant.name]) > 1:
                    print(f"{'':>11}- {job_type}: {job_tp:.3f}")
        premium = merged.tenant_throughput["premium"]
        basic = merged.tenant_throughput["basic"]
        if mode == "noncooperative":
            print(
                f"  premium / basic throughput = {premium / basic:.2f} "
                "(the 2x weight is honoured exactly)\n"
            )
        else:
            print()


if __name__ == "__main__":
    main()
