"""Run the serving layer in-process and query it like a real client.

Starts a :class:`~repro.server.ReproServer` on an OS-assigned port
(2 shards, a 2-slot admission bound), then walks the wire protocol with
plain ``urllib`` — no client library required:

1. ``GET /healthz`` — liveness and shard fan-out;
2. ``POST /solve`` — one allocation, and the same request again to show
   the shard-local cache hit in the ``served`` telemetry;
3. ``POST /solve_batch`` — streaming NDJSON, results in completion
   order with their request index;
4. a burst of ``use_cache: false`` solves to trip admission control and
   show the ``429 Too Many Requests`` + ``Retry-After`` overload
   contract;
5. ``GET /metrics`` — per-shard cache/admission counters;
6. a graceful drain.

Run it::

    python examples/serve_and_query.py
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

from repro.core.serialization import instance_to_dict
from repro.server import ReproServer
from repro.workloads.generator import random_instance


def post(url: str, payload: dict):
    """POST JSON; returns (status, headers, parsed-or-raw body)."""
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def get(url: str):
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


async def main() -> None:
    server = ReproServer(
        "127.0.0.1", 0, shards=2, pipeline="default", max_in_flight=2
    )
    await server.start()
    base = f"http://127.0.0.1:{server.port}"
    print(f"serving on {base} ({server.pool!r})\n")

    # urllib is blocking, so query from a worker thread while the
    # server's event loop keeps running here
    def client() -> None:
        print("== GET /healthz ==")
        health = get(f"{base}/healthz")
        print(f"  status={health['status']} shards={health['shards']}\n")

        instance = random_instance(num_users=4, num_gpu_types=3, seed=7)
        body = {"instance": instance_to_dict(instance), "scheduler": "oef-coop"}

        print("== POST /solve (cold, then the cache hit) ==")
        for _ in range(2):
            status, _, raw = post(f"{base}/solve", body)
            payload = json.loads(raw)
            served = payload["served"]
            print(
                f"  {status} disposition={served['disposition']:<9} "
                f"solve_seconds={served['solve_seconds']:.4f} "
                f"fingerprint={payload['fingerprint'][:12]}..."
            )
        print()

        print("== POST /solve_batch (streaming NDJSON) ==")
        batch = {
            "requests": [
                {
                    "instance": instance_to_dict(
                        random_instance(4, 3, seed=seed)
                    )
                }
                for seed in range(4)
            ]
        }
        status, _, raw = post(f"{base}/solve_batch", batch)
        for line in raw.splitlines():
            row = json.loads(line)
            print(
                f"  index={row['index']} shard={row['shard']} "
                f"status={row['status']}"
            )
        print()

        print("== overload: burst of cold solves vs 2 admission slots ==")
        cold = [
            {
                "instance": instance_to_dict(random_instance(8, 4, seed=seed)),
                "use_cache": False,
            }
            for seed in range(8)
        ]
        outcomes = []

        def one(body: dict) -> None:
            status, headers, raw = post(f"{base}/solve", body)
            retry = headers.get("Retry-After")
            outcomes.append((status, retry, raw))

        threads = [threading.Thread(target=one, args=(b,)) for b in cold]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ok = sum(1 for status, _, _ in outcomes if status == 200)
        shed = [(r, raw) for status, r, raw in outcomes if status == 429]
        print(f"  {ok} solved, {len(shed)} shed with 429")
        if shed:
            retry_after, raw = shed[0]
            error = json.loads(raw)["error"]
            print(
                f"  Retry-After: {retry_after}s "
                f"(exact hint {error['retry_after_s']:.3f}s, "
                f"disposition {error['disposition']})"
            )
        print()

        print("== GET /metrics ==")
        metrics = get(f"{base}/metrics")
        totals = metrics["totals"]
        print(
            f"  dispatched={totals['dispatched']} "
            f"cache_hits={totals['cache_hits']} "
            f"shed_capacity={totals['shed_capacity']}"
        )
        for row in metrics["shards"]:
            print(
                f"  shard {row['shard']}: dispatched={row['dispatched']} "
                f"hits={row['cache_hits']} entries={row['cache_entries']}"
            )

    await asyncio.to_thread(client)
    print("\ndraining ...")
    await server.stop()
    final = server.final_metrics
    print(
        f"drained; final counters: "
        f"{final['server']['requests_by_status']}"
    )


if __name__ == "__main__":
    asyncio.run(main())
