"""Replay dynamic scenarios: philly-replay vs bursty under two schedulers.

Builds two seeded scenario recipes from the library and replays each
under the OEF cooperative stack and the Gavel baseline.  Because a
recipe re-materialises the *identical* event stream for every run, the
per-scheduler differences below are purely scheduling — same arrivals,
same bursts, same jobs.

Also shows a multi-seed sweep of ``bursty`` riding the parallel
execution backends: aggregate metrics are identical whichever backend
ran the sweep.

Run:  python examples/scenario_replay.py
"""

from repro.scenarios import (
    ScenarioRunner,
    make_scenario,
    scenario_sweep,
    sweep_summary,
)

ROUNDS = 12
SCHEDULERS = ("oef-coop", "gavel")


def replay(scenario_name: str) -> None:
    scenario = make_scenario(scenario_name, seed=7, rounds=ROUNDS)
    script = scenario.materialize()
    print(
        f"\n== {scenario_name} ==  ({len(script.initial_tenants)} initial "
        f"tenants, {len(script.events)} timed events)"
    )
    for scheduler in SCHEDULERS:
        result = ScenarioRunner(scenario, scheduler=scheduler).run()
        print(
            f"{scheduler:<10} jobs done {result.completed_jobs:3d}   "
            f"mean JCT {result.mean_jct / 3600.0:5.2f} h   "
            f"util {result.mean_utilization:4.0%}   "
            f"jain {result.mean_jain:.3f}   "
            f"envy {result.mean_envy:.3f}   "
            f"starvation {result.total_starvation:3d}"
        )


def sweep() -> None:
    print("\n== bursty, seeds 1-4, thread backend ==")
    results = scenario_sweep(
        make_scenario("bursty", rounds=ROUNDS),
        seeds=[1, 2, 3, 4],
        scheduler="oef-coop",
        backend="thread",
    )
    summary = sweep_summary(results)
    for key, value in summary.items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")


def main() -> None:
    for name in ("philly-replay", "bursty"):
        replay(name)
    sweep()


if __name__ == "__main__":
    main()
