"""Job-level fairness with elastic DL training (the paper's §8 extension).

Rigid distributed jobs need exactly N workers: when a tenant's grant falls
short, the job starves and devices idle.  Elastic jobs scale to whatever
they are granted, and job-level OEF (one virtual user per job) splits a
tenant's share equally across its jobs instead of time-slicing them.

Run:  python examples/elastic_training.py
"""

from repro.cluster import (
    ClusterSimulator,
    ElasticOEFScheduler,
    OEFScheduler,
    SimulationConfig,
    Tenant,
    make_job,
    paper_cluster,
)
from repro.workloads import TenantGenerator


def build_tenants(elastic: bool):
    generator = TenantGenerator(seed=77)
    tenants = []
    for index, model in enumerate(["vgg16", "resnet50", "lstm", "transformer"]):
        tenant = Tenant(name=f"team{index + 1}")
        for job_number in range(3):
            throughput = generator._job_throughput(model)
            tenant.add_job(
                make_job(
                    job_id=index * 10 + job_number,
                    tenant=tenant.name,
                    model_name=model,
                    throughput=throughput,
                    num_workers=8,        # wants up to 8 workers
                    elastic=elastic,      # ... but can shrink when elastic
                    total_iterations=float(throughput[0]) * 4 * 3600.0,
                )
            )
        tenants.append(tenant)
    return tenants


def run(label: str, elastic: bool) -> None:
    scheduler = (
        ElasticOEFScheduler("noncooperative")
        if elastic
        else OEFScheduler("noncooperative")
    )
    simulator = ClusterSimulator(
        paper_cluster(),
        build_tenants(elastic),
        scheduler,
        config=SimulationConfig(num_rounds=96, stop_when_idle=True),
    )
    metrics = simulator.run()
    print(
        f"{label:<22} mean throughput {metrics.mean_total_actual():6.2f}   "
        f"mean JCT {metrics.mean_jct() / 3600.0:5.2f} h   "
        f"starvation-rounds {metrics.total_starvation_rounds():3d}   "
        f"jobs finished {len(metrics.completions)}"
    )


def main() -> None:
    print("12 jobs wanting 8 workers each on a 24-GPU cluster:")
    run("rigid (tenant-level)", elastic=False)
    run("elastic (job-level)", elastic=True)
    print(
        "\nElastic jobs absorb any grant size, so devices never idle while "
        "jobs starve; job-level OEF also equalises progress across a "
        "tenant's jobs (§8)."
    )


if __name__ == "__main__":
    main()
