"""Strategy-proofness in action: can a tenant profit by lying?

Uses the paper's §2.4 running example (three tenants, two GPU types).
Against Gavel and Gandiva_fair, the first tenant can inflate its reported
speedup on the fast GPU and raise its *true* throughput — the exact lies
the paper analyses (2 -> 2.5 for Gavel, 2 -> 2.8 for Gandiva_fair).
Against non-cooperative OEF, no inflated misreport helps (Theorem 5.4);
the strategy-proofness auditor searches dozens of candidate lies and
finds none that pays.

Run:  python examples/cheating_tenant.py
"""

import numpy as np

from repro import (
    ProblemInstance,
    SpeedupMatrix,
    check_strategy_proofness,
    create_scheduler,
)

TRUE_W = [[1.0, 2.0], [1.0, 3.0], [1.0, 4.0]]
PAPER_LIES = {"gavel": [1.0, 2.5], "gandiva-fair": [1.0, 2.8]}


def main() -> None:
    instance = ProblemInstance(SpeedupMatrix(TRUE_W), capacities=[1.0, 1.0])
    truth = np.asarray(TRUE_W[0])

    print("--- the paper's hand-picked lies (tenant 1 inflates GPU2) ---")
    for allocator in (create_scheduler("gavel"), create_scheduler("gandiva-fair")):
        fake = PAPER_LIES[allocator.name]
        honest = allocator.allocate(instance)
        lied = allocator.allocate(
            instance.with_speedups(instance.speedups.with_row(0, fake))
        )
        before = float(truth @ honest.matrix[0])
        after = float(truth @ lied.matrix[0])
        print(
            f"  {allocator.name:<13} honest {before:.4f} -> fake {fake[1]:.1f} "
            f"gives {after:.4f}  ({'LIE PAYS OFF' if after > before else 'no gain'})"
        )

    print("\n--- systematic audit: search inflated misreports per tenant ---")
    for allocator in (
        create_scheduler("gavel"),
        create_scheduler("gandiva-fair"),
        create_scheduler("oef-noncoop"),
    ):
        report = check_strategy_proofness(allocator, instance, trials=8, seed=1)
        verdict = (
            "strategy-proof"
            if report.satisfied
            else f"NOT strategy-proof (best lie gains {report.max_gain:.3f})"
        )
        print(f"  {allocator.name:<13} {report.trials} lies tried: {verdict}")

    print(
        "\nOnly non-cooperative OEF makes honesty the best policy "
        "(Theorem 5.4)."
    )


if __name__ == "__main__":
    main()
