"""Extending the gateway with a user-defined middleware stage.

The gateway pipeline (see ``docs/middleware.md``) is deliberately open:
any object with a ``handle(request, next)`` method slots in anywhere via
``Gateway.use(stage, before=...)``.  This example adds a *logging* stage
that records one line per request — scheduler, disposition, wall time —
without touching any built-in stage, then shows it observing cold
solves, cache hits, verified warm starts, and admission shedding.

Run it::

    python examples/custom_middleware.py
"""

import time

from repro import ProblemInstance
from repro.gateway import (
    Gateway,
    Middleware,
    Request,
    deadline_in,
    default_pipeline,
)
from repro.workloads.generator import random_instance


class LoggingMiddleware(Middleware):
    """Log every request that passes through, with its outcome.

    Placement matters: above the cache it sees *every* request (hits
    included); below the cache it would see only the solves.  Here we
    install it outermost — above admission — so shed requests are
    logged too (admission answers shed requests without calling the
    stages below it).
    """

    name = "logging"

    def __init__(self):
        self.lines = []

    def handle(self, request: Request, next):
        start = time.perf_counter()
        response = next(request)
        elapsed = time.perf_counter() - start
        line = (
            f"[{self.name}] scheduler={response.scheduler:<12} "
            f"disposition={response.disposition:<15} "
            f"status={response.status:<10} {elapsed * 1e3:7.2f} ms"
        )
        self.lines.append(line)
        print(line)
        return response


def main() -> None:
    instance = random_instance(num_users=4, num_gpu_types=3, seed=7)

    gateway = Gateway(default_pipeline())
    logger = LoggingMiddleware()
    gateway.use(logger, before="admission")
    print("pipeline:", " -> ".join(stage.name for stage in gateway.pipeline))
    print()

    print("=== cold solve, then a cache hit ===")
    gateway.solve(instance, "oef-coop")
    gateway.solve(instance, "cooperative")  # alias; same content fingerprint

    print()
    print("=== incremental drift: the verified warm tier ===")
    opts = {"backend": "simplex"}
    prev = gateway.solve(instance, "oef-noncoop", options=opts, incremental=True)
    drifted = ProblemInstance(instance.speedups, instance.capacities * 1.3)
    gateway.solve(
        drifted, "oef-noncoop", options=opts, incremental=True, prev_result=prev
    )

    print()
    print("=== an expired deadline is shed before any work ===")
    gateway.solve(instance, "max-min", deadline=deadline_in(-1.0))

    print()
    stats = gateway.cache_info()
    print(
        f"cache: {stats.hits} hits / {stats.misses} misses, "
        f"{stats.structural_hits} verified warm start(s); "
        f"logged {len(logger.lines)} request(s)"
    )


if __name__ == "__main__":
    main()
